type transport = Inline | Piggyback_txn | Explicit_txn

type clock_mode = Vector | Lamport_only

type granularity = Variable | Block of int | Word

type clock_rep = Epoch_adaptive | Dense_vector | Sparse_vector

type clock_wire = Dense_wire | Sparse_wire | Delta_wire

type t = {
  use_write_clock : bool;
  transport : transport;
  clock_mode : clock_mode;
  granularity : granularity;
  clock_rep : clock_rep;
  clock_wire : clock_wire;
  store_shards : int;
  record_trace : bool;
  trace_reads_from : [ `All_writers | `Last_writer ];
  ordered_locking : bool;
  lock_aware_clocks : bool;
  provenance_depth : int;
  memory_model : Dsm_rdma.Model.t;
}

let default =
  {
    use_write_clock = true;
    transport = Piggyback_txn;
    clock_mode = Vector;
    granularity = Variable;
    clock_rep = Epoch_adaptive;
    clock_wire = Delta_wire;
    store_shards = 8;
    record_trace = false;
    trace_reads_from = `All_writers;
    ordered_locking = true;
    lock_aware_clocks = false;
    provenance_depth = 4;
    memory_model = Dsm_rdma.Model.default;
  }

let transport_name = function
  | Inline -> "inline"
  | Piggyback_txn -> "piggyback"
  | Explicit_txn -> "explicit"

let granularity_name = function
  | Variable -> "var"
  | Block k -> Printf.sprintf "block%d" k
  | Word -> "word"

let clock_wire_name = function
  | Dense_wire -> "dense"
  | Sparse_wire -> "sparse"
  | Delta_wire -> "delta"

let name t =
  Printf.sprintf "%s%s/%s/%s%s%s%s"
    (match t.clock_mode with Vector -> "vector" | Lamport_only -> "lamport")
    (if t.use_write_clock then "+W" else "")
    (transport_name t.transport)
    (granularity_name t.granularity)
    (match t.clock_rep with
    | Epoch_adaptive -> ""
    | Dense_vector -> "/dense"
    | Sparse_vector -> "/sparse")
    (match t.clock_wire with
    | Delta_wire -> ""
    | (Dense_wire | Sparse_wire) as w -> "/wire=" ^ clock_wire_name w)
    (if t.memory_model = Dsm_rdma.Model.default then ""
     else "/model=" ^ Dsm_rdma.Model.name t.memory_model)

let validate t =
  (match t.granularity with
  | Block k when k < 1 ->
      invalid_arg "Config.validate: block size must be positive"
  | Variable | Block _ | Word -> ());
  if t.store_shards < 1 || t.store_shards land (t.store_shards - 1) <> 0 then
    invalid_arg "Config.validate: store_shards must be a positive power of two";
  if t.provenance_depth < 0 then
    invalid_arg "Config.validate: provenance_depth must be non-negative";
  t
