(** Adapter from detector-side race data to the plain-data explanation
    layer: lowers [Report.race] values (clocks become dense [int array]
    snapshots) and drives {!Dsm_obs.Explain} with the flight-recorder
    window. Pure — explaining a report is a deterministic function of
    (report, provenance, window). *)

val explain_race :
  window:Dsm_obs.Probe.event list -> Report.race -> Dsm_obs.Explain.t
(** Explain one signal. [window] is the flight-recorder contents, oldest
    first ({!Dsm_obs.Flight.events}). *)

val explain_report :
  window:Dsm_obs.Probe.event list -> Report.t -> Dsm_obs.Explain.t list
(** Every signal of the report, in signal order. *)

val explain_atomicity :
  window:Dsm_obs.Probe.event list ->
  detail:string ->
  Provenance.t ->
  Dsm_obs.Explain.t option
(** Fallback for violating runs with {e zero} race signals (e.g. the
    planted RMW write-mark bug, which breaks atomicity without breaking
    happens-before): the first granule — in deterministic granule
    order — whose provenance holds atomic updates from two distinct
    processes becomes an "atomicity" explanation of its two most recent
    such entries. [detail] names the violated invariant. *)
