open Dsm_memory
open Dsm_clocks

type entry = { v : Vector_clock.t; w : Vector_clock.t; s : Vector_clock.t }

(* Granule identity within one node's public segment is (offset, len);
   the hot path keys the table by the pair packed into a single
   immediate int so lookups hash an unboxed key with an int-specialized
   table — no tuple allocation, no polymorphic comparison. *)
let len_bits = 21

let max_len = (1 lsl len_bits) - 1

let pack_key ~offset ~len =
  if len < 0 || len > max_len || offset < 0 || offset > 1 lsl 40 then
    invalid_arg "Clock_store: granule outside packable range";
  (offset lsl len_bits) lor len

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

(* Granules are spread across shards by address range: 64-word ranges
   round-robin over the (power-of-two many) shards, so word-granularity
   sweeps over a large segment split across every table instead of
   loading one, while a single variable-sized granule always lands
   wholly in the shard of its base offset. Each shard also owns a
   scratch clock with the store's representation — the batched
   coherence path borrows it to fold a batch's clocks without
   allocating. *)
let range_bits = 6

type shard = { table : entry Int_tbl.t; scratch : Vector_clock.t }

type t = {
  node : int;
  clock_dim : int;
  granularity : Config.granularity;
  rep : Config.clock_rep;
  shard_mask : int;
  shards : shard array;
  mutable registered : Addr.region list; (* address-sorted *)
}

let mk_clock rep ~n =
  match rep with
  | Config.Epoch_adaptive -> Vector_clock.create ~n
  | Config.Dense_vector -> Vector_clock.create_dense ~n
  | Config.Sparse_vector -> Vector_clock.create_sparse ~n

let create ~node ~clock_dim ~granularity ?(rep = Config.Epoch_adaptive)
    ?(shards = 1) () =
  if clock_dim < 1 then invalid_arg "Clock_store.create: clock_dim";
  if shards < 1 || shards land (shards - 1) <> 0 then
    invalid_arg "Clock_store.create: shards must be a positive power of two";
  {
    node;
    clock_dim;
    granularity;
    rep;
    shard_mask = shards - 1;
    shards =
      Array.init shards (fun _ ->
          {
            table = Int_tbl.create 64;
            scratch = mk_clock rep ~n:clock_dim;
          });
    registered = [];
  }

let node t = t.node

let shards t = Array.length t.shards

let shard_of t ~offset = (offset lsr range_bits) land t.shard_mask

let shard_scratch t ~offset = t.shards.(shard_of t ~offset).scratch

let register t (r : Addr.region) =
  match t.granularity with
  | Config.Block _ | Config.Word -> ()
  | Config.Variable ->
      if r.base.pid <> t.node then
        invalid_arg "Clock_store.register: region is on another node";
      if not (Addr.is_public r) then
        invalid_arg "Clock_store.register: region is not public";
      if List.exists (fun r' -> Addr.overlap r r') t.registered then
        invalid_arg "Clock_store.register: overlaps a registered variable";
      t.registered <-
        List.sort
          (fun (a : Addr.region) (b : Addr.region) ->
            compare a.base.offset b.base.offset)
          (r :: t.registered)

(* Under [Variable] granularity every accessed word must fall inside a
   registered variable; checked before any granule is visited so a
   failing access signals nothing. The registered list is walked twice —
   no intermediate list is built. *)
let check_covered t (r : Addr.region) =
  let covered_words =
    List.fold_left
      (fun acc (v : Addr.region) ->
        if Addr.overlap r v then
          let lo = max v.base.offset r.base.offset in
          let hi = min (Addr.last_offset v) (Addr.last_offset r) in
          acc + (hi - lo + 1)
        else acc)
      0 t.registered
  in
  if covered_words < r.len then
    failwith
      (Printf.sprintf "Clock_store: access to %s touches unregistered shared data"
         (Addr.to_string r))

let iter_granules t (r : Addr.region) ~f =
  if r.base.pid <> t.node then invalid_arg "Clock_store.granules: wrong node";
  match t.granularity with
  | Config.Word ->
      for offset = r.base.offset to Addr.last_offset r do
        f ~offset ~len:1
      done
  | Config.Block k ->
      let first = r.base.offset / k and last = Addr.last_offset r / k in
      for b = first to last do
        f ~offset:(b * k) ~len:k
      done
  | Config.Variable ->
      check_covered t r;
      List.iter
        (fun (v : Addr.region) ->
          if Addr.overlap r v then f ~offset:v.base.offset ~len:v.len)
        t.registered

let granules t (r : Addr.region) =
  let acc = ref [] in
  iter_granules t r ~f:(fun ~offset ~len ->
      acc :=
        Addr.region ~pid:t.node ~space:Addr.Public ~offset ~len :: !acc);
  List.rev !acc

let entry_at t ~offset ~len =
  let key = pack_key ~offset ~len in
  let table = t.shards.(shard_of t ~offset).table in
  match Int_tbl.find_opt table key with
  | Some e -> e
  | None ->
      let mk () = mk_clock t.rep ~n:t.clock_dim in
      let e = { v = mk (); w = mk (); s = mk () } in
      Int_tbl.add table key e;
      e

let entry t (g : Addr.region) = entry_at t ~offset:g.base.offset ~len:g.len

let fold_entries t ~init ~f =
  Array.fold_left
    (fun acc sh -> Int_tbl.fold (fun _ e acc -> f e acc) sh.table acc)
    init t.shards

let entries t =
  Array.fold_left (fun acc sh -> acc + Int_tbl.length sh.table) 0 t.shards

(* The paper's accounting (§5.1): V plus the W refinement = 2 clocks per
   datum. The sync clock is an extension and is only charged once an
   atomic has actually touched the datum. Representation-independent:
   an epoch still models a dimension-[clock_dim] vector. *)
let storage_words t =
  fold_entries t ~init:0 ~f:(fun e acc ->
      acc + (2 * t.clock_dim)
      + (if Vector_clock.is_zero e.s then 0 else t.clock_dim))

(* How many of the materialized clocks are still compact (epoch or
   sparse pairs) — the fraction the E7-style storage model could
   exploit; reported by the detector benchmarks. *)
let epoch_clocks t =
  let compact c = Vector_clock.is_epoch c || Vector_clock.is_sparse c in
  fold_entries t ~init:0 ~f:(fun e acc ->
      acc
      + (if compact e.v then 1 else 0)
      + (if compact e.w then 1 else 0)
      + if compact e.s then 1 else 0)
