open Dsm_memory
open Dsm_clocks

type entry = { v : Vector_clock.t; w : Vector_clock.t; s : Vector_clock.t }

(* Granule identity within one node's public segment is (offset, len);
   the hot path keys the table by the pair packed into a single
   immediate int so lookups hash an unboxed key with an int-specialized
   table — no tuple allocation, no polymorphic comparison. *)
let len_bits = 21

let max_len = (1 lsl len_bits) - 1

let pack_key ~offset ~len =
  if len < 0 || len > max_len || offset < 0 || offset > 1 lsl 40 then
    invalid_arg "Clock_store: granule outside packable range";
  (offset lsl len_bits) lor len

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

type t = {
  node : int;
  clock_dim : int;
  granularity : Config.granularity;
  dense_clocks : bool;
  mutable registered : Addr.region list; (* address-sorted *)
  table : entry Int_tbl.t; (* pack_key ~offset ~len -> clocks *)
}

let create ~node ~clock_dim ~granularity ?(dense_clocks = false) () =
  if clock_dim < 1 then invalid_arg "Clock_store.create: clock_dim";
  {
    node;
    clock_dim;
    granularity;
    dense_clocks;
    registered = [];
    table = Int_tbl.create 64;
  }

let node t = t.node

let register t (r : Addr.region) =
  match t.granularity with
  | Config.Block _ | Config.Word -> ()
  | Config.Variable ->
      if r.base.pid <> t.node then
        invalid_arg "Clock_store.register: region is on another node";
      if not (Addr.is_public r) then
        invalid_arg "Clock_store.register: region is not public";
      if List.exists (fun r' -> Addr.overlap r r') t.registered then
        invalid_arg "Clock_store.register: overlaps a registered variable";
      t.registered <-
        List.sort
          (fun (a : Addr.region) (b : Addr.region) ->
            compare a.base.offset b.base.offset)
          (r :: t.registered)

(* Under [Variable] granularity every accessed word must fall inside a
   registered variable; checked before any granule is visited so a
   failing access signals nothing. The registered list is walked twice —
   no intermediate list is built. *)
let check_covered t (r : Addr.region) =
  let covered_words =
    List.fold_left
      (fun acc (v : Addr.region) ->
        if Addr.overlap r v then
          let lo = max v.base.offset r.base.offset in
          let hi = min (Addr.last_offset v) (Addr.last_offset r) in
          acc + (hi - lo + 1)
        else acc)
      0 t.registered
  in
  if covered_words < r.len then
    failwith
      (Printf.sprintf "Clock_store: access to %s touches unregistered shared data"
         (Addr.to_string r))

let iter_granules t (r : Addr.region) ~f =
  if r.base.pid <> t.node then invalid_arg "Clock_store.granules: wrong node";
  match t.granularity with
  | Config.Word ->
      for offset = r.base.offset to Addr.last_offset r do
        f ~offset ~len:1
      done
  | Config.Block k ->
      let first = r.base.offset / k and last = Addr.last_offset r / k in
      for b = first to last do
        f ~offset:(b * k) ~len:k
      done
  | Config.Variable ->
      check_covered t r;
      List.iter
        (fun (v : Addr.region) ->
          if Addr.overlap r v then f ~offset:v.base.offset ~len:v.len)
        t.registered

let granules t (r : Addr.region) =
  let acc = ref [] in
  iter_granules t r ~f:(fun ~offset ~len ->
      acc :=
        Addr.region ~pid:t.node ~space:Addr.Public ~offset ~len :: !acc);
  List.rev !acc

let entry_at t ~offset ~len =
  let key = pack_key ~offset ~len in
  match Int_tbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let mk () =
        if t.dense_clocks then Vector_clock.create_dense ~n:t.clock_dim
        else Vector_clock.create ~n:t.clock_dim
      in
      let e = { v = mk (); w = mk (); s = mk () } in
      Int_tbl.add t.table key e;
      e

let entry t (g : Addr.region) = entry_at t ~offset:g.base.offset ~len:g.len

let entries t = Int_tbl.length t.table

(* The paper's accounting (§5.1): V plus the W refinement = 2 clocks per
   datum. The sync clock is an extension and is only charged once an
   atomic has actually touched the datum. Representation-independent:
   an epoch still models a dimension-[clock_dim] vector. *)
let storage_words t =
  Int_tbl.fold
    (fun _ e acc ->
      acc + (2 * t.clock_dim)
      + (if Vector_clock.is_zero e.s then 0 else t.clock_dim))
    t.table 0

(* How many of the materialized clocks are still compact epochs — the
   fraction the E7-style storage model could exploit; reported by the
   detector benchmarks. *)
let epoch_clocks t =
  Int_tbl.fold
    (fun _ e acc ->
      acc
      + (if Vector_clock.is_epoch e.v then 1 else 0)
      + (if Vector_clock.is_epoch e.w then 1 else 0)
      + if Vector_clock.is_epoch e.s then 1 else 0)
    t.table 0
