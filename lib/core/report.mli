(** Race reports: §4.4's "signaled to the user … but must not abort".

    Every incomparability found by the detector becomes one {!race}
    record; execution continues. The report keeps them all, in signal
    order, for the experiment harness to score against ground truth. *)

type against = General_clock | Write_clock
(** Which per-datum clock the accessor's clock was incomparable with. *)

type prior_access = {
  p_pid : int;
  p_kind : Dsm_trace.Event.kind;
  p_time : float;
  p_op : int;  (** detector checked-op ordinal *)
  p_event_id : int option;
  p_clock : Dsm_clocks.Vector_clock.t;
}
(** The race's {e other} endpoint, recovered from the detector's
    per-granule provenance ring (see {!Provenance}): the most recent
    conflicting access by another process. *)

type race = {
  event_id : int option;
      (** trace event id of the flagged access, when tracing is on *)
  time : float;
  accessor : int;  (** initiating process *)
  kind : Dsm_trace.Event.kind;  (** the flagged access's kind *)
  granule : Dsm_memory.Addr.region;  (** the shared datum (or block) *)
  accessor_clock : Dsm_clocks.Vector_clock.t;
  datum_clock : Dsm_clocks.Vector_clock.t;
  against : against;
  prior : prior_access option;
      (** [None] when provenance is disabled ([provenance_depth = 0]) or
          no conflicting access is retained *)
}

type t

val create : ?verbose:bool -> unit -> t
(** With [verbose = true] every signal is also printed on stderr through
    [Logs] (the paper's "message on the standard output"). Default
    [false]: collect silently. *)

val signal : t -> race -> unit

val suppress : t -> Dsm_memory.Addr.region -> unit
(** §4.4: "some algorithms contain race conditions on purpose". Marks a
    region as intentionally racy: signals whose granule overlaps it —
    including signals that arrived {e before} the suppression — are
    still recorded (see {!suppressed}) but excluded from {!count},
    {!races} and the groupings, so the acknowledgment workflow of a real
    debugging tool stays consistent no matter when the region was
    acknowledged. *)

val suppressed : t -> race list
(** Signals swallowed by suppressions, in signal order. *)

val count : t -> int

val races : t -> race list
(** In signal order. *)

val flagged_event_ids : t -> (int, unit) Hashtbl.t
(** Trace event ids carried by the signals (tracing runs only). *)

val clear : t -> unit

type group = {
  g_granule : Dsm_memory.Addr.region;
  g_pids : int list;  (** distinct accessors involved, ascending *)
  g_count : int;  (** signals collapsed into this group *)
  g_first_time : float;
  g_kinds : Dsm_trace.Event.kind list;  (** distinct kinds, first-seen order *)
}

val grouped : t -> group list
(** Signals collapsed per shared datum — how a debugging tool would
    present them ("variable [a] is raced by P0 and P1, 17 times, first at
    t=18.65"). Ordered by first signal time. *)

val pp_group : Format.formatter -> group -> unit

val pp_grouped : Format.formatter -> t -> unit

val to_csv : t -> string
(** One row per signal:
    [time,accessor,kind,node,offset,len,against,accessor_clock,datum_clock,event_id]
    — the machine-readable companion of [Dsm_trace.Export]. [event_id]
    is empty when tracing was off, otherwise it joins the row to the
    recorded trace event. *)

val fingerprint : t -> string
(** Hex digest of {!to_csv}: two runs produced the same signals (same
    order, times, granules and clocks) iff their fingerprints match.
    The schedule explorer compares these to check per-schedule detector
    determinism and to validate replays. *)

val pp_race : Format.formatter -> race -> unit

val pp_summary : Format.formatter -> t -> unit
