(** Per-granule access provenance: a bounded ring (depth =
    [Config.provenance_depth]) of the most recent checked accesses —
    last writer plus recent readers — per (node, offset, len) granule,
    so a race signal can name {e both} endpoints.

    Observation-only detector state: consulted and updated on the
    detection path, never feeding back into clocks, verdicts or
    scheduling — attaching it cannot change a run's fingerprint. *)

open Dsm_clocks

type entry = {
  pid : int;
  kind : Dsm_trace.Event.kind;
  time : float;  (** simulated µs at check time *)
  op : int;  (** detector checked-op ordinal *)
  event_id : int;  (** trace event id, [-1] when tracing is off *)
  clock : Vector_clock.t;  (** accessor clock snapshot at check time *)
}

type t

val create : depth:int -> t
(** [depth = 0] disables the store: {!note} is a no-op and every lookup
    is empty. *)

val depth : t -> int

val note : t -> node:int -> offset:int -> len:int -> entry -> unit
(** Record an access, evicting the oldest once the granule's ring is
    full. O(1). *)

val history : t -> node:int -> offset:int -> len:int -> entry list
(** Retained accesses, newest first (at most [depth]). *)

val find_prior :
  t ->
  node:int ->
  offset:int ->
  len:int ->
  pid:int ->
  write:bool ->
  clock:Vector_clock.t ->
  entry option
(** The race's other endpoint: the most recent retained access by a
    different process that conflicts with the flagged access ([write]
    true unless both are plain reads) and whose clock is concurrent
    with [clock]. Falls back to the most recent conflicting access when
    no retained entry is concurrent (the true endpoint may have aged
    out of the bounded ring). *)

val iter_granules :
  t -> f:(node:int -> offset:int -> len:int -> entry list -> unit) -> unit
(** Visit every granule with retained history in deterministic
    (node, offset, len) order; entries newest first. *)
