(* Per-granule access history: a bounded ring of the most recent checked
   accesses (last writer + recent readers), so a race signal can name
   the *other* endpoint, not just the flagged one.

   Keyed exactly like the granule clocks: (node, offset, len) — one
   history per granule the detector checks. Observation-only state: it
   is consulted and updated on the detection path but never feeds back
   into clocks, verdicts or scheduling. *)

open Dsm_clocks

type entry = {
  pid : int;
  kind : Dsm_trace.Event.kind;
  time : float;
  op : int; (* detector checked-op ordinal *)
  event_id : int; (* trace event id, -1 when tracing is off *)
  clock : Vector_clock.t; (* accessor clock snapshot at check time *)
}

type ring = { slots : entry option array; mutable n : int }

type t = {
  depth : int;
  granules : (int, ring) Hashtbl.t; (* packed (node, offset, len) *)
}

(* Same trick as Clock_store: pack the key into an immediate int.
   Offsets/lengths are segment-bounded (well under 2^20 words). *)
let pack ~node ~offset ~len = (((node lsl 21) lor offset) lsl 21) lor len

let unpack key =
  let len = key land 0x1FFFFF in
  let offset = (key lsr 21) land 0x1FFFFF in
  let node = key lsr 42 in
  (node, offset, len)

let create ~depth =
  if depth < 0 then invalid_arg "Provenance.create: negative depth";
  { depth; granules = Hashtbl.create 64 }

let depth t = t.depth

let note t ~node ~offset ~len entry =
  if t.depth > 0 then begin
    let key = pack ~node ~offset ~len in
    let ring =
      match Hashtbl.find_opt t.granules key with
      | Some r -> r
      | None ->
          let r = { slots = Array.make t.depth None; n = 0 } in
          Hashtbl.add t.granules key r;
          r
    in
    ring.slots.(ring.n mod t.depth) <- Some entry;
    ring.n <- ring.n + 1
  end

(* Newest first. *)
let history t ~node ~offset ~len =
  match Hashtbl.find_opt t.granules (pack ~node ~offset ~len) with
  | None -> []
  | Some ring ->
      let depth = Array.length ring.slots in
      let live = min ring.n depth in
      let acc = ref [] in
      (* newest is slot (n-1) mod depth, then backwards *)
      for i = live - 1 downto 0 do
        match ring.slots.((ring.n - 1 - i) mod depth) with
        | Some e -> acc := e :: !acc
        | None -> ()
      done;
      !acc

let conflicts ~write entry =
  (* two reads never conflict; anything involving a write or RMW does *)
  write || entry.kind <> Dsm_trace.Event.Read

(* The most recent access by another process that conflicts with the
   flagged access and is concurrent with its clock — the race's other
   endpoint. Falls back to the most recent conflicting access by
   another process when no retained entry is concurrent (the real
   endpoint may have been evicted from the bounded ring). *)
let find_prior t ~node ~offset ~len ~pid ~write ~clock =
  let entries = history t ~node ~offset ~len in
  let candidates =
    List.filter (fun e -> e.pid <> pid && conflicts ~write e) entries
  in
  match
    List.find_opt (fun e -> Vector_clock.concurrent clock e.clock) candidates
  with
  | Some e -> Some e
  | None -> ( match candidates with e :: _ -> Some e | [] -> None)

let iter_granules t ~f =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.granules [] in
  let keys = List.sort compare keys in
  List.iter
    (fun key ->
      let node, offset, len = unpack key in
      f ~node ~offset ~len (history t ~node ~offset ~len))
    keys
