(** Per-node clock metadata: the [V] and [W] clocks attached to every
    shared piece of data (§4.1–4.2).

    One store lives (conceptually in NIC memory) on each node and maps
    {e granules} of that node's public segment to a pair of clocks. A
    granule is the unit of detection chosen by {!Config.granularity}:
    the registered shared variable, an aligned block, or a single word.

    Entries are created lazily with zero clocks — the paper's initial
    value — and updated in place while the NIC lock on the covering
    region is held (§4.2's no-self-race argument).

    The table is keyed by the granule's [(offset, len)] packed into a
    single immediate [int] and hashed by an int-specialized hashtable, so
    the per-access lookup neither allocates nor runs polymorphic
    comparison; {!iter_granules} walks the granules of an access without
    building a list.

    The store is {e sharded} by address range: 64-word ranges round-robin
    across a power-of-two number of int-keyed tables, bounding any one
    table's load when word granularity meets large segments. Each shard
    also owns a scratch clock in the store's representation
    ({!shard_scratch}) so the batched-coherence path can fold a batch's
    clocks without allocating. Sharding is invisible to detection:
    granule identity, laziness and iteration order are unchanged. *)

type entry = {
  v : Dsm_clocks.Vector_clock.t;
      (** general-purpose clock: all plain accesses *)
  w : Dsm_clocks.Vector_clock.t;  (** write clock: plain writes only (§4.4) *)
  s : Dsm_clocks.Vector_clock.t;
      (** synchronization clock: atomic read-modify-writes. Atomics are
          NIC-serialized, so they never race with each other; they act as
          writes towards plain accesses and as release/acquire points for
          causality (extension beyond the paper, see
          [Detector.fetch_add]) *)
}

type t

val create :
  node:int ->
  clock_dim:int ->
  granularity:Config.granularity ->
  ?rep:Config.clock_rep ->
  ?shards:int ->
  unit ->
  t
(** [clock_dim] is the vector dimension ([n], or 1 in the Lamport
    ablation). [rep] (default {!Config.Epoch_adaptive}) fixes the
    representation of every lazily created clock. [shards] (default 1)
    is the number of address-range shards; must be a positive power of
    two ([Invalid_argument] otherwise). *)

val node : t -> int

val shards : t -> int
(** Number of address-range shards the granule table is split across. *)

val shard_scratch : t -> offset:int -> Dsm_clocks.Vector_clock.t
(** The scratch clock owned by the shard responsible for [offset] — in
    the store's clock representation, reusable between batches. Callers
    must [Vector_clock.reset] it before use and must not let it escape
    the current batch. *)

val register : t -> Dsm_memory.Addr.region -> unit
(** Declares a shared variable ({!Config.Variable} granularity): the
    compiler's role of §3.1. The region must be public, on this node, and
    must not overlap a previously registered variable.
    No-op under block/word granularity. *)

val iter_granules :
  t -> Dsm_memory.Addr.region -> f:(offset:int -> len:int -> unit) -> unit
(** [iter_granules t r ~f] calls [f] once per granule covering an access
    to [r], in address order, without materializing regions or lists —
    the detector's hot path. Under {!Config.Variable}, raises [Failure]
    {e before} visiting any granule if an accessed word falls outside
    every registered variable — shared data must be declared. *)

val granules : t -> Dsm_memory.Addr.region -> Dsm_memory.Addr.region list
(** List-building convenience over {!iter_granules} (tests, tooling). *)

val entry_at : t -> offset:int -> len:int -> entry
(** The clock triple of one granule identified by its raw coordinates
    (as passed to {!iter_granules}'s callback); lazily zero-initialized.
    Allocation-free on the hit path. *)

val entry : t -> Dsm_memory.Addr.region -> entry
(** {!entry_at} keyed by a region (control-plane convenience). *)

val entries : t -> int
(** Number of granules that have materialized clocks. *)

val storage_words : t -> int
(** Total words of clock metadata held: [entries × 2 × clock_dim] — the
    §5.1 storage-overhead numerator measured in E7. Representation-
    independent (an epoch still models a full vector). *)

val epoch_clocks : t -> int
(** How many of the materialized clocks (3 per entry) are currently held
    in the compact epoch representation — introspection for benchmarks
    and tests. *)
