open Dsm_memory
open Dsm_clocks
module Machine = Dsm_rdma.Machine
module Event = Dsm_trace.Event
module Recorder = Dsm_trace.Recorder

(* The per-access path is allocation-free: granule walks are iterated
   (no lists), store lookups hash a packed-int key, clock comparisons
   and merges run on adaptive epoch/vector clocks in place, and every
   intermediate clock value lives in a per-process scratch buffer owned
   by the detector. Scratch is keyed by accessor pid because the
   explicit transport blocks inside an access (control round trip) and
   the simulator may interleave another process's access meanwhile; a
   single process's accesses never nest, so per-pid buffers are safe. *)

type t = {
  machine : Machine.t;
  config : Config.t;
  mh : Dsm_rdma.Model.hooks;
      (* the memory model's detector hooks, unpacked at creation so the
         per-access path reads plain booleans *)
  probe : Dsm_obs.Probe.t; (* the owning engine's telemetry bus *)
  report : Report.t;
  dim : int; (* vector dimension: n, or 1 in the Lamport ablation *)
  procs : Vector_clock.t array;
  stores : Clock_store.t array;
  recorder : Recorder.t option;
  (* clock per user-level lock, keyed by the locked region's full
     identity (pid, space, offset, len); only consulted when
     [lock_aware_clocks] is set *)
  lock_clocks : (Addr.region, Vector_clock.t) Hashtbl.t;
  (* per-pid scratch clocks for the hot path *)
  scratch_absorb : Vector_clock.t array;
  scratch_datum : Vector_clock.t array;
  scratch_fv : Vector_clock.t array;
  scratch_fw : Vector_clock.t array;
  scratch_fs : Vector_clock.t array;
  scratch_barrier : Vector_clock.t;
  (* bounded per-granule access history so races can name both
     endpoints; observation-only (never feeds back into detection) *)
  provenance : Provenance.t;
  mutable checked_ops : int;
  mutable meta_messages : int;
  mutable clock_words_shipped : int;
}

let vget_tag = "dsm.vget"

let vput_tag = "dsm.vput"

(* Extra [vput] class code: merge the payload into S only — the early
   release an RMW performs before its fabric round trip. *)
let s_release_code = 4

(* Access classes: the paper's reads and writes, plus the one-sided
   read-modify-write extension. An RMW is atomically both a read and a
   write against the granule's V/W clocks — it read-marks V always and
   write-marks W when it actually wrote (a failed compare-and-swap does
   not) — and additionally releases the accessor's clock into the
   granule's S clock. S is sound as a release point because the target
   NIC applies every RMW on a granule under the same region lock: RMWs
   on one granule are genuinely serialized, so a later RMW that acquires
   S really does happen after every clock merged into it. Plain accesses
   never touch S, so they cannot borrow synchronization they do not
   have. *)
type access_class = Plain_read | Plain_write | Rmw of { wrote : bool }

let class_code = function
  | Plain_read -> 0
  | Plain_write -> 1
  | Rmw { wrote = true } -> 2
  | Rmw { wrote = false } -> 3

let class_of_code = function
  | 0 -> Plain_read
  | 1 -> Plain_write
  | 2 -> Rmw { wrote = true }
  | 3 -> Rmw { wrote = false }
  | c -> invalid_arg (Printf.sprintf "Detector: bad access class %d" c)

let merge_entry (mh : Dsm_rdma.Model.hooks) (e : Clock_store.entry) cls clock
    =
  match cls with
  | Plain_read -> Vector_clock.merge_into ~into:e.v clock
  | Plain_write ->
      Vector_clock.merge_into ~into:e.v clock;
      Vector_clock.merge_into ~into:e.w clock
  | Rmw { wrote } ->
      Vector_clock.merge_into ~into:e.v clock;
      if wrote then Vector_clock.merge_into ~into:e.w clock;
      if mh.rmw_acquires_order then Vector_clock.merge_into ~into:e.s clock

let install_control_plane t =
  Machine.set_control_handler t.machine ~tag:vget_tag
    (fun ~node ~origin:_ words ->
      let e =
        Clock_store.entry_at t.stores.(node) ~offset:words.(0) ~len:words.(1)
      in
      let reply = Array.make (3 * t.dim) 0 in
      Vector_clock.store_words e.v reply ~off:0;
      Vector_clock.store_words e.w reply ~off:t.dim;
      Vector_clock.store_words e.s reply ~off:(2 * t.dim);
      Some reply);
  Machine.set_control_handler t.machine ~tag:vput_tag
    (fun ~node ~origin:_ words ->
      let e =
        Clock_store.entry_at t.stores.(node) ~offset:words.(0) ~len:words.(1)
      in
      (if words.(2) = s_release_code then begin
         if t.mh.rmw_acquires_order then
           Vector_clock.merge_words ~into:e.s words ~off:3
       end
       else
         match class_of_code words.(2) with
         | Plain_read -> Vector_clock.merge_words ~into:e.v words ~off:3
         | Plain_write ->
             Vector_clock.merge_words ~into:e.v words ~off:3;
             Vector_clock.merge_words ~into:e.w words ~off:3
         | Rmw { wrote } ->
             Vector_clock.merge_words ~into:e.v words ~off:3;
             if wrote then Vector_clock.merge_words ~into:e.w words ~off:3;
             if t.mh.rmw_acquires_order then
               Vector_clock.merge_words ~into:e.s words ~off:3);
      None)

let create machine ?config ?(verbose = false) () =
  (* An omitted config adopts the machine's memory model — the common
     "default config, whatever the machine runs" construction; an
     explicit config must agree with the machine (checked below). *)
  let config =
    match config with
    | Some c -> c
    | None ->
        { Config.default with Config.memory_model = Machine.model machine }
  in
  let config = Config.validate config in
  if config.Config.memory_model <> Machine.model machine then
    invalid_arg
      (Printf.sprintf
         "Detector.create: config.memory_model is %s but the machine was \
          created under %s — the detector's happens-before edges must match \
          the machine's protocol"
         (Dsm_rdma.Model.name config.Config.memory_model)
         (Dsm_rdma.Model.name (Machine.model machine)));
  let n = Machine.n machine in
  let dim =
    match config.Config.clock_mode with
    | Config.Vector -> n
    | Config.Lamport_only -> 1
  in
  let rep = config.Config.clock_rep in
  let mk () =
    match rep with
    | Config.Epoch_adaptive -> Vector_clock.create ~n:dim
    | Config.Dense_vector -> Vector_clock.create_dense ~n:dim
    | Config.Sparse_vector -> Vector_clock.create_sparse ~n:dim
  in
  let clock_array () = Array.init n (fun _ -> mk ()) in
  let t =
    {
      machine;
      config;
      mh = Dsm_rdma.Model.hooks config.Config.memory_model;
      probe = Dsm_sim.Engine.probe (Machine.sim machine);
      report = Report.create ~verbose ();
      dim;
      procs = clock_array ();
      stores =
        Array.init n (fun node ->
            Clock_store.create ~node ~clock_dim:dim
              ~granularity:config.Config.granularity ~rep
              ~shards:config.Config.store_shards ());
      lock_clocks = Hashtbl.create 16;
      scratch_absorb = clock_array ();
      scratch_datum = clock_array ();
      scratch_fv = clock_array ();
      scratch_fw = clock_array ();
      scratch_fs = clock_array ();
      scratch_barrier = mk ();
      recorder =
        (if config.Config.record_trace then
           let reads_from =
             match config.Config.trace_reads_from with
             | `All_writers -> Recorder.All_writers
             | `Last_writer -> Recorder.Last_writer
           in
           Some (Recorder.create ~reads_from ~n ())
         else None);
      provenance = Provenance.create ~depth:config.Config.provenance_depth;
      checked_ops = 0;
      meta_messages = 0;
      clock_words_shipped = 0;
    }
  in
  install_control_plane t;
  (* Inline/piggyback transports ship the accessor's clock on the data
     messages themselves: install the machine's clock source so every
     clock-carrying message carries a real piggyback, encoded per
     [clock_wire]. Accounting-only — the fabric still prices the nominal
     [extra_words] allowance (see [Machine.set_clock_source]). *)
  (match config.Config.transport with
  | Config.Inline | Config.Piggyback_txn ->
      let mode =
        match config.Config.clock_wire with
        | Config.Dense_wire -> Codec.Dense
        | Config.Sparse_wire -> Codec.Sparse
        | Config.Delta_wire -> Codec.Delta
      in
      Machine.set_clock_source machine ~mode (fun ~pid -> t.procs.(pid))
  | Config.Explicit_txn -> ());
  t

let machine t = t.machine

let config t = t.config

let report t = t.report

let register t (r : Addr.region) = Clock_store.register t.stores.(r.base.pid) r

let alloc_shared t ~pid ?name ~len () =
  let r = Machine.alloc_public t.machine ~pid ?name ~len () in
  register t r;
  r

(* The component this process ticks: its pid, or 0 when every process
   shares the single Lamport component. *)
let me t p =
  match t.config.Config.clock_mode with
  | Config.Vector -> Machine.pid p
  | Config.Lamport_only -> 0

let now t = Dsm_sim.Engine.now (Machine.sim t.machine)

let record_access t p ~kind ~target =
  match t.recorder with
  | None -> None
  | Some rec_ ->
      Some
        (Recorder.access rec_ ~time:(now t) ~pid:(Machine.pid p) ~kind ~target
           ())

let kind_of_class = function
  | Plain_read -> Event.Read
  | Plain_write -> Event.Write
  | Rmw _ -> Event.Atomic_update

let is_writing_class = function
  | Plain_write | Rmw { wrote = true } -> true
  | Plain_read | Rmw { wrote = false } -> false

(* Cold path: a race was found; materialize the granule region and the
   clock snapshots for the report, and recover the race's other endpoint
   from the granule's provenance ring (the current access has not been
   noted yet, so the lookup cannot return the access itself). *)
let signal_race t ~pid ~cls ~v0 ~event_id ~node ~offset ~len ~datum ~against =
  let kind = kind_of_class cls in
  if t.probe.on then
    Dsm_obs.Probe.emit t.probe
      (Race_signal
         {
           time = now t;
           pid;
           node;
           offset;
           len;
           kind = Event.kind_name kind;
           against =
             (match against with
             | Report.General_clock -> "general"
             | Report.Write_clock -> "write");
         });
  let prior =
    Option.map
      (fun (e : Provenance.entry) ->
        {
          Report.p_pid = e.pid;
          p_kind = e.kind;
          p_time = e.time;
          p_op = e.op;
          p_event_id = (if e.event_id >= 0 then Some e.event_id else None);
          p_clock = Vector_clock.snapshot e.clock;
        })
      (Provenance.find_prior t.provenance ~node ~offset ~len ~pid
         ~write:(is_writing_class cls) ~clock:v0)
  in
  Report.signal t.report
    {
      Report.event_id;
      time = now t;
      accessor = pid;
      kind;
      granule = Addr.region ~pid:node ~space:Addr.Public ~offset ~len;
      accessor_clock = Vector_clock.snapshot v0;
      datum_clock = Vector_clock.snapshot datum;
      against;
      prior;
    }

(* Check the accessor's clock [v0] against one granule's clocks
   [fv]/[fw]/[fs] and fold the clocks a read or RMW observes into
   [absorb]. What this access must be ordered against:
   - a plain read races with concurrent writes — W carries both plain
     write marks and RMW write marks (or any access in the
     no-write-clock ablation);
   - a plain write races with any concurrent access (V);
   - an RMW first acquires the granule's S clock — the releases of every
     RMW the target NIC serialized before it under the region lock —
     then performs its read half and write half as one check: a writing
     RMW checks V (W ⊆ V, so one comparison covers both halves); a
     read-only RMW (failed compare-and-swap) checks only W, like a plain
     read. The acquire is what keeps RMW/RMW pairs silent while leaving
     every RMW/plain pair visible: plain accesses never release into S,
     so their marks stay concurrent with the acquirer. *)
let check_granule t ~pid ~cls ~v0 ~event_id ~node ~offset ~len ~fv ~fw ~fs
    ~absorb =
  let datum = t.scratch_datum.(pid) in
  Vector_clock.reset datum;
  let against =
    match cls with
    | Plain_read ->
        if t.config.Config.use_write_clock then begin
          Vector_clock.merge_into ~into:datum fw;
          Report.Write_clock
        end
        else begin
          Vector_clock.merge_into ~into:datum fv;
          Report.General_clock
        end
    | Plain_write ->
        Vector_clock.merge_into ~into:datum fv;
        Report.General_clock
    | Rmw { wrote } ->
        if t.mh.rmw_acquires_order then Vector_clock.merge_into ~into:v0 fs;
        if wrote || not t.config.Config.use_write_clock then begin
          Vector_clock.merge_into ~into:datum fv;
          Report.General_clock
        end
        else begin
          Vector_clock.merge_into ~into:datum fw;
          Report.Write_clock
        end
  in
  if Vector_clock.concurrent v0 datum then
    signal_race t ~pid ~cls ~v0 ~event_id ~node ~offset ~len ~datum ~against;
  if Provenance.depth t.provenance > 0 then
    Provenance.note t.provenance ~node ~offset ~len
      {
        Provenance.pid;
        kind = kind_of_class cls;
        time = now t;
        op = t.checked_ops;
        event_id = (match event_id with Some id -> id | None -> -1);
        clock = Vector_clock.snapshot v0;
      };
  match cls with
  | Plain_read | Rmw _ ->
      if t.mh.read_acquires_writes then begin
        Vector_clock.merge_into ~into:absorb fw;
        Vector_clock.merge_into ~into:absorb fs
      end;
      (* total store order: every access additionally acquires the
         granule's full history *)
      if t.mh.write_acquires_order then
        Vector_clock.merge_into ~into:absorb fv
  | Plain_write ->
      if t.mh.write_acquires_order then
        Vector_clock.merge_into ~into:absorb fv

(* Check one access (already ticked clock [v0]) against every granule it
   covers, signal incomparabilities, merge [v0] into the granules, and
   return (in the accessor's scratch buffer) the union of the clocks the
   accessor absorbs — the causal history of the writes/atomics a read or
   an atomic observed.

   Under Inline/Piggyback the store is manipulated directly (the
   exchange rides the data messages); under Explicit each remote granule
   costs a control round trip to read and an async control message to
   update — Algorithm 5 taken literally. *)
let check_access t p ~(region : Addr.region) ~cls ~v0 ~event_id =
  let node = region.base.pid in
  let store = t.stores.(node) in
  let pid = Machine.pid p in
  let absorb = t.scratch_absorb.(pid) in
  Vector_clock.reset absorb;
  let remote_explicit =
    match t.config.Config.transport with
    | Config.Explicit_txn -> node <> pid
    | Config.Inline | Config.Piggyback_txn -> false
  in
  Clock_store.iter_granules store region ~f:(fun ~offset ~len ->
      if remote_explicit then begin
        let words =
          Machine.control p ~target:node ~tag:vget_tag
            ~words:[| offset; len |]
        in
        t.meta_messages <- t.meta_messages + 2;
        t.clock_words_shipped <- t.clock_words_shipped + Array.length words;
        let fv = t.scratch_fv.(pid)
        and fw = t.scratch_fw.(pid)
        and fs = t.scratch_fs.(pid) in
        Vector_clock.load_words fv words ~off:0;
        Vector_clock.load_words fw words ~off:t.dim;
        Vector_clock.load_words fs words ~off:(2 * t.dim);
        check_granule t ~pid ~cls ~v0 ~event_id ~node ~offset ~len ~fv ~fw
          ~fs ~absorb;
        (* The async update message retains its payload until delivery,
           so this one allocation is irreducible here. *)
        let payload = Array.make (3 + t.dim) 0 in
        payload.(0) <- offset;
        payload.(1) <- len;
        payload.(2) <- class_code cls;
        Vector_clock.store_words v0 payload ~off:3;
        t.meta_messages <- t.meta_messages + 1;
        t.clock_words_shipped <- t.clock_words_shipped + t.dim;
        Machine.control_async p ~target:node ~tag:vput_tag ~words:payload
      end
      else begin
        let e = Clock_store.entry_at store ~offset ~len in
        check_granule t ~pid ~cls ~v0 ~event_id ~node ~offset ~len ~fv:e.v
          ~fw:e.w ~fs:e.s ~absorb;
        merge_entry t.mh e cls v0
      end);
  absorb

(* Piggybacked clock words on a data message: a dense-encoded vector. *)
let piggyback_words t =
  match t.config.Config.transport with
  | Config.Inline | Config.Piggyback_txn -> t.dim + 1
  | Config.Explicit_txn -> 0

(* Global (pid, space, offset) lock order, decided without building or
   sorting lists: [Private] ranks below [Public], matching the
   constructor order the seed's polymorphic compare used. *)
let space_rank = function Addr.Private -> 0 | Addr.Public -> 1

let region_before (a : Addr.region) (b : Addr.region) =
  a.base.pid < b.base.pid
  || (a.base.pid = b.base.pid
     && (space_rank a.base.space < space_rank b.base.space
        || (a.base.space = b.base.space && a.base.offset < b.base.offset)))

(* The shared body of Algorithms 1 and 2: tick, read-side check and
   absorption, write-side check, then the transfer provided by [transfer].
   [read_region] is checked when public; [write_region] always is. *)
let checked_op t p ~kind ~read_region ~write_region ~transfer =
  t.checked_ops <- t.checked_ops + 1;
  let v0 = t.procs.(Machine.pid p) in
  if t.probe.on then
    Dsm_obs.Probe.emit t.probe
      (Detector_check
         {
           time = now t;
           pid = Machine.pid p;
           kind;
           fast_path = Vector_clock.is_epoch v0;
         });
  let body () =
    Vector_clock.tick v0 ~me:(me t p);
    if Addr.is_public read_region then begin
      let event_id = record_access t p ~kind:Event.Read ~target:read_region in
      let absorbed =
        check_access t p ~region:read_region ~cls:Plain_read ~v0 ~event_id
      in
      (* The reader absorbs the causal history of the writes it observed:
         this is what orders Figure 5b's m3 after m1. *)
      Vector_clock.merge_into ~into:v0 absorbed;
      if t.probe.on then
        Dsm_obs.Probe.emit t.probe
          (Clock_merge { time = now t; pid = Machine.pid p })
    end;
    if Addr.is_public write_region then begin
      let event_id =
        record_access t p ~kind:Event.Write ~target:write_region
      in
      let absorbed =
        check_access t p ~region:write_region ~cls:Plain_write ~v0 ~event_id
      in
      (* under total store order the writer absorbs the granule's whole
         history; under every weaker model [absorbed] is empty here *)
      if t.mh.write_acquires_order then
        Vector_clock.merge_into ~into:v0 absorbed
    end;
    transfer ()
  in
  match t.config.Config.transport with
  | Config.Inline -> body ()
  | Config.Piggyback_txn | Config.Explicit_txn ->
      let first, second =
        if
          t.config.Config.ordered_locking
          && region_before write_region read_region
        then (write_region, read_region)
        else (read_region, write_region)
      in
      let tk1 = Machine.lock p first in
      let tk2 = Machine.lock p second in
      body ();
      Machine.unlock p tk2;
      Machine.unlock p tk1

let count_shipped t msgs =
  t.clock_words_shipped <- t.clock_words_shipped + (piggyback_words t * msgs)

let put t p ~src ~dst =
  let extra_words = piggyback_words t in
  let transfer () =
    match t.config.Config.transport with
    | Config.Inline ->
        count_shipped t 1;
        Machine.put p ~src ~dst ~extra_words ()
    | Config.Piggyback_txn | Config.Explicit_txn ->
        count_shipped t 1;
        Machine.raw_put p ~src ~dst ~extra_words ()
  in
  checked_op t p ~kind:"put" ~read_region:src ~write_region:dst ~transfer

let get t p ~src ~dst =
  let extra_words = piggyback_words t in
  let transfer () =
    match t.config.Config.transport with
    | Config.Inline ->
        count_shipped t 2;
        Machine.get p ~src ~dst ~extra_words ()
    | Config.Piggyback_txn | Config.Explicit_txn ->
        count_shipped t 2;
        Machine.raw_get p ~src ~dst ~extra_words ()
  in
  checked_op t p ~kind:"get" ~read_region:src ~write_region:dst ~transfer

(* ---------- batched checked operations ----------

   Group maximal runs of same-destination, address-ascending operations
   and move each run's data in one fabric message. Detection stays
   strictly per-operation — the same ticks, granule checks and merges as
   the unbatched path, so the race verdicts are identical — only the
   transport is coalesced: one message, one lock span, one piggybacked
   clock per run instead of one per op. *)

(* Detection body of one operation (tick, read-side check/absorb,
   write-side check) without locks or data transfer — the batched paths
   interleave several of these inside a single lock span. Mirrors
   [checked_op]'s body exactly. *)
let check_op t p ~kind ~read_region ~write_region =
  t.checked_ops <- t.checked_ops + 1;
  let v0 = t.procs.(Machine.pid p) in
  if t.probe.on then
    Dsm_obs.Probe.emit t.probe
      (Detector_check
         {
           time = now t;
           pid = Machine.pid p;
           kind;
           fast_path = Vector_clock.is_epoch v0;
         });
  Vector_clock.tick v0 ~me:(me t p);
  if Addr.is_public read_region then begin
    let event_id = record_access t p ~kind:Event.Read ~target:read_region in
    let absorbed =
      check_access t p ~region:read_region ~cls:Plain_read ~v0 ~event_id
    in
    Vector_clock.merge_into ~into:v0 absorbed;
    if t.probe.on then
      Dsm_obs.Probe.emit t.probe
        (Clock_merge { time = now t; pid = Machine.pid p })
  end;
  if Addr.is_public write_region then begin
    let event_id = record_access t p ~kind:Event.Write ~target:write_region in
    let absorbed =
      check_access t p ~region:write_region ~cls:Plain_write ~v0 ~event_id
    in
    if t.mh.write_acquires_order then
      Vector_clock.merge_into ~into:v0 absorbed
  end

(* Maximal runs of consecutive pairs satisfying [key prev cur]. *)
let group_runs ~key pairs =
  match pairs with
  | [] -> []
  | first :: rest ->
      let runs = ref [] and cur = ref [ first ] and prev = ref first in
      List.iter
        (fun pair ->
          if key !prev pair then cur := pair :: !cur
          else begin
            runs := List.rev !cur :: !runs;
            cur := [ pair ]
          end;
          prev := pair)
        rest;
      runs := List.rev !cur :: !runs;
      List.rev !runs

let span_of (first : Addr.region) (last : Addr.region) =
  Addr.region ~pid:first.base.pid ~space:Addr.Public
    ~offset:first.base.offset
    ~len:(last.base.offset + last.len - first.base.offset)

let last_of run = snd (List.nth run (List.length run - 1))

(* A run of puts is batchable when the destinations sit on one node in
   ascending non-overlapping order and no source is public (a public
   source would need its own read-side lock, breaking the single-span
   locking scheme — those fall back to per-op puts). *)
let put_run t p run =
  match run with
  | [] -> ()
  | [ (src, dst) ] -> put t p ~src ~dst
  | ((_, (dst0 : Addr.region)) :: _ : (Addr.region * Addr.region) list) ->
      if List.exists (fun ((src : Addr.region), _) -> Addr.is_public src) run
      then List.iter (fun (src, dst) -> put t p ~src ~dst) run
      else begin
        let extra_words = piggyback_words t in
        let check (src, dst) =
          check_op t p ~kind:"put" ~read_region:src ~write_region:dst
        in
        match t.config.Config.transport with
        | Config.Inline ->
            List.iter check run;
            count_shipped t 1;
            Machine.put_batch p ~pairs:run ~extra_words ()
        | Config.Piggyback_txn ->
            (* one lock acquisition spanning the whole run instead of
               one per put (Algorithm 1, amortized) *)
            let span = span_of dst0 (last_of run) in
            let tk = Machine.lock p span in
            List.iter check run;
            count_shipped t 1;
            Machine.raw_put_batch p ~pairs:run ~extra_words ();
            Machine.unlock p tk
        | Config.Explicit_txn ->
            List.iter (fun (src, dst) -> put t p ~src ~dst) run
      end

let put_batch t p ~pairs =
  match t.config.Config.transport with
  | Config.Explicit_txn ->
      (* the explicit transport pays its control round trips per granule
         either way; batching the data message would not change them *)
      List.iter (fun (src, dst) -> put t p ~src ~dst) pairs
  | Config.Inline | Config.Piggyback_txn ->
      List.iter (put_run t p)
        (group_runs pairs
           ~key:(fun (_, (prev : Addr.region)) (_, (cur : Addr.region)) ->
             cur.base.pid = prev.base.pid
             && Addr.is_public cur
             && cur.base.offset >= prev.base.offset + prev.len))

(* Gets batch when the sources are contiguous ascending spans of one
   node and no destination is public (Figure 3 would demand a lock per
   public destination). *)
let get_run t p run =
  match run with
  | [] -> ()
  | [ (src, dst) ] -> get t p ~src ~dst
  | (((src0 : Addr.region), _) :: _ : (Addr.region * Addr.region) list) ->
      if List.exists (fun (_, (dst : Addr.region)) -> Addr.is_public dst) run
      then List.iter (fun (src, dst) -> get t p ~src ~dst) run
      else begin
        let extra_words = piggyback_words t in
        let check (src, dst) =
          check_op t p ~kind:"get" ~read_region:src ~write_region:dst
        in
        match t.config.Config.transport with
        | Config.Inline ->
            List.iter check run;
            count_shipped t 2;
            Machine.get_batch p ~pairs:run ~extra_words ()
        | Config.Piggyback_txn ->
            let span = span_of src0 (fst (List.nth run (List.length run - 1)))
            in
            let tk = Machine.lock p span in
            List.iter check run;
            count_shipped t 2;
            Machine.raw_get_batch p ~pairs:run ~extra_words ();
            Machine.unlock p tk
        | Config.Explicit_txn ->
            List.iter (fun (src, dst) -> get t p ~src ~dst) run
      end

let get_batch t p ~pairs =
  match t.config.Config.transport with
  | Config.Explicit_txn ->
      List.iter (fun (src, dst) -> get t p ~src ~dst) pairs
  | Config.Inline | Config.Piggyback_txn ->
      List.iter (get_run t p)
        (group_runs pairs
           ~key:(fun ((prev : Addr.region), _) ((cur : Addr.region), _) ->
             cur.base.pid = prev.base.pid
             && cur.base.offset = prev.base.offset + prev.len))

(* Checked one-sided read-modify-writes (extension beyond the paper).

   The machine-level RMW runs first: whether it actually wrote (a failed
   compare-and-swap does not) decides the write-half marking, and that
   outcome is only known once the target NIC has applied the operation.
   Detection then performs the read half and the write half against the
   granule's V/W in one uninterrupted step — the meta-level mirror of
   the NIC's single region-lock hold — after acquiring the granule's S
   clock (see [check_granule]). Running detection after the fabric round
   trip is sound exactly because of that acquire: any RMW whose marks
   this access must not race with also released into S, and the two
   sides of a plain/RMW race stay concurrent whichever detection runs
   first, since plain accesses never release into S.

   [read_src] is a local staging region some RMWs (accumulate) read
   their operands from; when it is public it gets its own plain-read
   check, like [checked_op]'s read side. *)

(* Release the accessor's pre-RMW history into the granule's S clocks
   BEFORE the fabric round trip. The target NIC serializes RMWs on a
   granule under the region lock, so any RMW applied after this one
   observes this release at its own acquire no matter how the two reply
   deliveries interleave back at the origins. Without it a tie between
   reply events could run the later RMW's detection (and S acquire)
   before the earlier RMW's detection-time merge, and a poller that just
   observed a flag value could still be reported as racing with the
   flagger's earlier writes in some explored schedules. The release
   deliberately excludes the RMW's own tick — that mark joins V/W/S only
   at detection time, which is what keeps RMW/plain races visible. *)
let release_rmw_history t p ~(region : Addr.region) =
  if not t.mh.rmw_acquires_order then ()
  else begin
  let node = region.base.pid in
  let pid = Machine.pid p in
  let v0 = t.procs.(pid) in
  let store = t.stores.(node) in
  let remote_explicit =
    match t.config.Config.transport with
    | Config.Explicit_txn -> node <> pid
    | Config.Inline | Config.Piggyback_txn -> false
  in
  Clock_store.iter_granules store region ~f:(fun ~offset ~len ->
      if remote_explicit then begin
        let payload = Array.make (3 + t.dim) 0 in
        payload.(0) <- offset;
        payload.(1) <- len;
        payload.(2) <- s_release_code;
        Vector_clock.store_words v0 payload ~off:3;
        t.meta_messages <- t.meta_messages + 1;
        t.clock_words_shipped <- t.clock_words_shipped + t.dim;
        Machine.control_async p ~target:node ~tag:vput_tag ~words:payload
      end
      else
        let e = Clock_store.entry_at store ~offset ~len in
        Vector_clock.merge_into ~into:e.s v0)
  end

let checked_rmw t p ?read_src ~(region : Addr.region) ~run_op () =
  count_shipped t 2;
  release_rmw_history t p ~region;
  let result, wrote = run_op ~extra_words:(piggyback_words t) in
  t.checked_ops <- t.checked_ops + 1;
  let pid = Machine.pid p in
  let v0 = t.procs.(pid) in
  if t.probe.on then
    Dsm_obs.Probe.emit t.probe
      (Detector_check
         {
           time = now t;
           pid;
           kind = "atomic";
           fast_path = Vector_clock.is_epoch v0;
         });
  Vector_clock.tick v0 ~me:(me t p);
  (match read_src with
  | Some r when Addr.is_public r ->
      let event_id = record_access t p ~kind:Event.Read ~target:r in
      let absorbed =
        check_access t p ~region:r ~cls:Plain_read ~v0 ~event_id
      in
      Vector_clock.merge_into ~into:v0 absorbed
  | Some _ | None -> ());
  let event_id = record_access t p ~kind:Event.Atomic_update ~target:region in
  let absorbed = check_access t p ~region ~cls:(Rmw { wrote }) ~v0 ~event_id in
  Vector_clock.merge_into ~into:v0 absorbed;
  if t.probe.on then
    Dsm_obs.Probe.emit t.probe (Clock_merge { time = now t; pid });
  result

let check_rmw_target (target : Addr.global) =
  if target.space <> Addr.Public then
    invalid_arg "Detector.atomic: target is not public"

let fetch_add t p ~target ~delta =
  check_rmw_target target;
  checked_rmw t p
    ~region:(Addr.region_of_global target ~len:1)
    ~run_op:(fun ~extra_words ->
      (Machine.fetch_add p ~target ~extra_words ~delta (), true))
    ()

let cas t p ~target ~expected ~desired =
  check_rmw_target target;
  checked_rmw t p
    ~region:(Addr.region_of_global target ~len:1)
    ~run_op:(fun ~extra_words ->
      let ok = Machine.cas p ~target ~extra_words ~expected ~desired () in
      (ok, ok))
    ()

let accumulate t p ~src ~(dst : Addr.region) ~aop =
  if not (Addr.is_public dst) then
    invalid_arg "Detector.accumulate: dst is not public";
  checked_rmw t p ~read_src:src ~region:dst
    ~run_op:(fun ~extra_words ->
      (Machine.accumulate p ~src ~dst ~aop ~extra_words (), true))
    ()

let record_lock t ~pid ~phase ~lock ~time =
  match t.recorder with
  | None -> ()
  | Some rec_ -> (
      match phase with
      | `Acquire -> ignore (Recorder.lock_acquire rec_ ~time ~pid ~lock)
      | `Release -> ignore (Recorder.lock_release rec_ ~time ~pid ~lock))

(* User-level checked locks. [Machine.lock] provides the mutual
   exclusion; when [lock_aware_clocks] is set the lock also carries
   causality: release publishes the holder's clock into the lock's
   clock, acquire absorbs it — the classic release/acquire discipline
   the paper's algorithm lacks (experiment E11). *)
type lock_handle = { token : Machine.token; lock_region : Addr.region }

let lock_clock t (r : Addr.region) =
  match Hashtbl.find_opt t.lock_clocks r with
  | Some c -> c
  | None ->
      let c =
        match t.config.Config.clock_rep with
        | Config.Dense_vector -> Vector_clock.create_dense ~n:t.dim
        | Config.Epoch_adaptive -> Vector_clock.create ~n:t.dim
        | Config.Sparse_vector -> Vector_clock.create_sparse ~n:t.dim
      in
      Hashtbl.add t.lock_clocks r c;
      c

let lock t p (r : Addr.region) =
  let token = Machine.lock p r in
  if t.recorder <> None then
    record_lock t ~pid:(Machine.pid p) ~phase:`Acquire
      ~lock:(Addr.to_string r) ~time:(now t);
  if t.config.Config.lock_aware_clocks then begin
    let v0 = t.procs.(Machine.pid p) in
    Vector_clock.tick v0 ~me:(me t p);
    Vector_clock.merge_into ~into:v0 (lock_clock t r);
    if t.probe.on then
      Dsm_obs.Probe.emit t.probe
        (Clock_merge { time = now t; pid = Machine.pid p })
  end;
  { token; lock_region = r }

let unlock t p h =
  if t.config.Config.lock_aware_clocks then begin
    let v0 = t.procs.(Machine.pid p) in
    Vector_clock.tick v0 ~me:(me t p);
    Vector_clock.merge_into ~into:(lock_clock t h.lock_region) v0
  end;
  if t.recorder <> None then
    record_lock t ~pid:(Machine.pid p) ~phase:`Release
      ~lock:(Addr.to_string h.lock_region) ~time:(now t);
  Machine.unlock p h.token

let barrier_sync t =
  let merged = t.scratch_barrier in
  Vector_clock.reset merged;
  Array.iter (fun c -> Vector_clock.merge_into ~into:merged c) t.procs;
  Array.iter (fun c -> Vector_clock.merge_into ~into:c merged) t.procs;
  if t.probe.on then
    for pid = 0 to Array.length t.procs - 1 do
      Dsm_obs.Probe.emit t.probe (Clock_merge { time = now t; pid })
    done

let on_barrier t ~pid ~phase ~generation ~time =
  match t.recorder with
  | None -> ()
  | Some rec_ -> (
      match phase with
      | `Enter -> ignore (Recorder.barrier_enter rec_ ~time ~pid ~generation)
      | `Exit -> ignore (Recorder.barrier_exit rec_ ~time ~pid ~generation))

let proc_clock t pid = Vector_clock.snapshot t.procs.(pid)

let provenance t = t.provenance

let trace t = Option.map Recorder.finish t.recorder

let checked_ops t = t.checked_ops

let meta_messages t = t.meta_messages

(* Under the piggyback transports the true cost is what the machine's
   encoder actually shipped (delta/sparse/dense per [clock_wire]); the
   [count_shipped] field keeps the nominal dense allowance for the
   latency model's books. Explicit transport still counts its control
   payload words directly. *)
let clock_words_shipped t =
  match t.config.Config.transport with
  | Config.Inline | Config.Piggyback_txn -> Machine.clock_words_sent t.machine
  | Config.Explicit_txn -> t.clock_words_shipped

let storage_words t =
  Array.fold_left (fun acc s -> acc + Clock_store.storage_words s) 0 t.stores
  + Array.fold_left (fun acc c -> acc + Vector_clock.size_words c) 0 t.procs

let epoch_clocks t =
  Array.fold_left (fun acc s -> acc + Clock_store.epoch_clocks s) 0 t.stores
  + Array.fold_left
      (fun acc c -> acc + if Vector_clock.is_epoch c then 1 else 0)
      0 t.procs
