(* Lower detector-side race data (Report.race + Provenance entries +
   the flight-recorder window) into the plain-data explanation layer
   (Dsm_obs.Explain). The conversion is pure, so explaining a report is
   a deterministic function of (report, provenance, window). *)

open Dsm_clocks
module Event = Dsm_trace.Event
module Explain = Dsm_obs.Explain

let access_of_prior (p : Report.prior_access) =
  {
    Explain.pid = p.p_pid;
    kind = Event.kind_name p.p_kind;
    time = p.p_time;
    op = p.p_op;
    event_id = (match p.p_event_id with Some id -> id | None -> -1);
    clock = Vector_clock.to_array p.p_clock;
  }

let access_of_entry (e : Provenance.entry) =
  {
    Explain.pid = e.pid;
    kind = Event.kind_name e.kind;
    time = e.time;
    op = e.op;
    event_id = e.event_id;
    clock = Vector_clock.to_array e.clock;
  }

let explain_race ~window (r : Report.race) =
  let granule = r.granule in
  Explain.of_race ~node:granule.Dsm_memory.Addr.base.pid
    ~offset:granule.Dsm_memory.Addr.base.offset
    ~len:granule.Dsm_memory.Addr.len
    ~against:
      (match r.against with
      | Report.General_clock -> "general"
      | Report.Write_clock -> "write")
    ~flagged:
      {
        Explain.pid = r.accessor;
        kind = Event.kind_name r.kind;
        time = r.time;
        op = -1;
        event_id = (match r.event_id with Some id -> id | None -> -1);
        clock = Vector_clock.to_array r.accessor_clock;
      }
    ~datum_clock:(Vector_clock.to_array r.datum_clock)
    ?prior:(Option.map access_of_prior r.prior)
    ~window ()

let explain_report ~window report =
  List.map (explain_race ~window) (Report.races report)

(* Fallback for violations that produce *no* race signal (the planted
   RMW-atomicity bug): find the granule whose provenance history holds
   atomic updates from at least two processes, and explain its two most
   recent entries from distinct processes as an atomicity conflict. *)
let explain_atomicity ~window ~detail provenance =
  let best = ref None in
  Provenance.iter_granules provenance
    ~f:(fun ~node ~offset ~len entries ->
      if !best = None then begin
        let atomics =
          List.filter
            (fun (e : Provenance.entry) -> e.kind = Event.Atomic_update)
            entries
        in
        match atomics with
        | newest :: rest -> (
            match List.find_opt (fun (e : Provenance.entry) ->
                      e.pid <> newest.pid) rest
            with
            | Some other -> best := Some (node, offset, len, newest, other)
            | None -> ())
        | [] -> ()
      end);
  match !best with
  | None -> None
  | Some (node, offset, len, newest, other) ->
      Some
        (Explain.of_atomicity ~node ~offset ~len
           ~flagged:(access_of_entry newest)
           ~prior:(access_of_entry other) ~window ~detail ())
