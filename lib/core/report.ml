type against = General_clock | Write_clock

type prior_access = {
  p_pid : int;
  p_kind : Dsm_trace.Event.kind;
  p_time : float;
  p_op : int;
  p_event_id : int option;
  p_clock : Dsm_clocks.Vector_clock.t;
}

type race = {
  event_id : int option;
  time : float;
  accessor : int;
  kind : Dsm_trace.Event.kind;
  granule : Dsm_memory.Addr.region;
  accessor_clock : Dsm_clocks.Vector_clock.t;
  datum_clock : Dsm_clocks.Vector_clock.t;
  against : against;
  prior : prior_access option;
}

type t = {
  mutable races : race list;
  mutable suppressed : race list;
  mutable suppressions : Dsm_memory.Addr.region list;
  mutable count : int;
  verbose : bool;
}

let src = Logs.Src.create "dsmcheck.race" ~doc:"Race condition signals"

module Log = (val Logs.src_log src : Logs.LOG)

let create ?(verbose = false) () =
  { races = []; suppressed = []; suppressions = []; count = 0; verbose }

let against_name = function
  | General_clock -> "general clock"
  | Write_clock -> "write clock"

let pp_race ppf r =
  Format.fprintf ppf
    "RACE at t=%.2f: P%d %s on %a — accessor clock %a incomparable with %s %a"
    r.time r.accessor
    (Dsm_trace.Event.kind_name r.kind)
    Dsm_memory.Addr.pp_region r.granule Dsm_clocks.Vector_clock.pp
    r.accessor_clock (against_name r.against) Dsm_clocks.Vector_clock.pp
    r.datum_clock

let signal t r =
  if List.exists (Dsm_memory.Addr.overlap r.granule) t.suppressions then
    t.suppressed <- r :: t.suppressed
  else begin
    t.races <- r :: t.races;
    t.count <- t.count + 1;
    if t.verbose then Log.warn (fun m -> m "%a" pp_race r)
  end

(* Suppressing a region also reclassifies signals that arrived *before*
   the suppression, so [count]/[races]/[grouped] agree no matter when
   the acknowledgment happened. Both lists are newest-first. *)
let suppress t region =
  t.suppressions <- region :: t.suppressions;
  let now_suppressed, kept =
    List.partition
      (fun r -> Dsm_memory.Addr.overlap r.granule region)
      t.races
  in
  t.races <- kept;
  t.count <- t.count - List.length now_suppressed;
  t.suppressed <- now_suppressed @ t.suppressed

let suppressed t = List.rev t.suppressed

let count t = t.count

let races t = List.rev t.races

let flagged_event_ids t =
  let set = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r.event_id with Some id -> Hashtbl.replace set id () | None -> ())
    t.races;
  set

let clear t =
  t.races <- [];
  t.suppressed <- [];
  t.count <- 0

type group = {
  g_granule : Dsm_memory.Addr.region;
  g_pids : int list;
  g_count : int;
  g_first_time : float;
  g_kinds : Dsm_trace.Event.kind list;
}

let grouped t =
  let table : (int * int * int, group) Hashtbl.t = Hashtbl.create 16 in
  let key (r : race) =
    ( r.granule.Dsm_memory.Addr.base.pid,
      r.granule.Dsm_memory.Addr.base.offset,
      r.granule.Dsm_memory.Addr.len )
  in
  List.iter
    (fun r ->
      let k = key r in
      match Hashtbl.find_opt table k with
      | None ->
          Hashtbl.add table k
            {
              g_granule = r.granule;
              g_pids = [ r.accessor ];
              g_count = 1;
              g_first_time = r.time;
              g_kinds = [ r.kind ];
            }
      | Some g ->
          Hashtbl.replace table k
            {
              g with
              g_pids =
                (if List.mem r.accessor g.g_pids then g.g_pids
                 else g.g_pids @ [ r.accessor ]);
              g_count = g.g_count + 1;
              g_kinds =
                (if List.mem r.kind g.g_kinds then g.g_kinds
                 else g.g_kinds @ [ r.kind ]);
            })
    (races t);
  Hashtbl.fold (fun _ g acc -> g :: acc) table []
  |> List.map (fun g -> { g with g_pids = List.sort compare g.g_pids })
  |> List.sort (fun a b -> compare a.g_first_time b.g_first_time)

let pp_group ppf g =
  Format.fprintf ppf "%a: %d signal(s), %s by %s, first at t=%.2f"
    Dsm_memory.Addr.pp_region g.g_granule g.g_count
    (String.concat "/" (List.map Dsm_trace.Event.kind_name g.g_kinds))
    (String.concat ", "
       (List.map (fun p -> Printf.sprintf "P%d" p) g.g_pids))
    g.g_first_time

let pp_grouped ppf t =
  match grouped t with
  | [] -> Format.fprintf ppf "no race condition signaled"
  | groups ->
      Format.fprintf ppf "%d raced shared datum(s):@," (List.length groups);
      Format.pp_print_list pp_group ppf groups

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "time,accessor,kind,node,offset,len,against,accessor_clock,datum_clock,event_id\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%d,%s,%d,%d,%d,%s,\"%s\",\"%s\",%s\n" r.time
           r.accessor
           (Dsm_trace.Event.kind_name r.kind)
           r.granule.Dsm_memory.Addr.base.pid
           r.granule.Dsm_memory.Addr.base.offset r.granule.Dsm_memory.Addr.len
           (match r.against with
           | General_clock -> "general"
           | Write_clock -> "write")
           (Dsm_clocks.Vector_clock.to_string r.accessor_clock)
           (Dsm_clocks.Vector_clock.to_string r.datum_clock)
           (match r.event_id with Some id -> string_of_int id | None -> "")))
    (races t);
  Buffer.contents buf

let fingerprint t =
  Digest.to_hex (Digest.string (to_csv t))

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "no race condition signaled"
  else
    Format.fprintf ppf "%d race condition signal(s):@,%a" t.count
      (Format.pp_print_list pp_race)
      (races t)
