(** Detector configuration: the paper's design choices, each toggleable for
    the ablation experiments of DESIGN.md §5.

    The default configuration is the paper's algorithm as published:
    vector clocks, the §4.4 write-clock refinement, clocks piggybacked on
    the data messages, one clock pair per registered shared variable,
    globally ordered lock acquisition. *)

type transport =
  | Inline
      (** detection folded into the NIC's own atomic put/get: no explicit
          lock transaction, clocks ride the data messages — the cheapest
          deployment ("in the communication library", §5.2) *)
  | Piggyback_txn
      (** the paper's Algorithms 1–2 verbatim — explicit lock/unlock
          around the transfer — with the clock exchange piggybacked on
          the data messages *)
  | Explicit_txn
      (** Algorithms 1–2 with Algorithm 5 taken literally: clock reads
          and writes are separate control messages to the datum's node *)

type clock_mode =
  | Vector       (** dimension-[n] clocks: Lemma 1 applies *)
  | Lamport_only
      (** scalar clocks (the E6 ablation): totally ordered, hence no
          incomparability, hence {e no race is ever detected} — the
          bench demonstrates why §4.3's lower bound matters *)

type granularity =
  | Variable          (** one clock pair per registered shared variable —
                          the paper's "a clock for each shared piece of
                          data" *)
  | Block of int      (** one clock pair per aligned block of [k] words *)
  | Word              (** one clock pair per word: finest, costliest *)

type clock_rep =
  | Epoch_adaptive
      (** clocks start as compact FastTrack-style [(pid, count)] epochs
          and promote to dense vectors on the first cross-process merge:
          the common single-writer access costs O(1) and allocates
          nothing. Semantically transparent — detection results are
          identical to {!Dense_vector} *)
  | Dense_vector
      (** always-vector ablation baseline: every clock is a dense
          dimension-[n] array from birth, as in the paper's cost model *)
  | Sparse_vector
      (** large-[n] scaling representation: cross-process promotion lands
          on sorted [(pid, tick)] pairs — compare/merge cost O(active
          writers), not O(n) — and only past
          [Vector_clock.sparse_threshold] live components on a dense
          array. Semantically transparent, like {!Epoch_adaptive}; the
          conformance suite holds all three representations to identical
          verdicts *)

type clock_wire =
  | Dense_wire
      (** every piggyback ships the full dense vector — the paper's
          linear-in-[n] cost model taken literally on the wire *)
  | Sparse_wire
      (** every piggyback ships the sparse [(pid, tick)] pair form:
          O(active writers) per message, self-contained *)
  | Delta_wire
      (** adaptive per-edge differential encoding (the default): each
          clock-carrying message ships only the components changed since
          the last message on the same (src, dst) channel, or the
          smallest self-contained form when that is shorter or no cache
          entry exists yet. Wire-only — race verdicts, schedules and
          replay tokens are bit-identical across all three settings *)

type t = {
  use_write_clock : bool;
      (** §4.4: keep a separate write clock [W]; reads are checked against
          [W] only, eliminating read/read false positives *)
  transport : transport;
  clock_mode : clock_mode;
  granularity : granularity;
  clock_rep : clock_rep;
      (** representation of every clock the detector owns (process,
          per-datum, per-lock, scratch); see {!clock_rep} *)
  clock_wire : clock_wire;
      (** wire encoding of the clocks piggybacked on data messages under
          the [Inline] and [Piggyback_txn] transports; see {!clock_wire}.
          Accounting-only: the fabric's timing model still charges the
          nominal [dim + 1] words, so schedules are unchanged *)
  store_shards : int;
      (** number of address-range shards each node's [Clock_store] hashes
          its granules across (power of two; default 8). Sharding bounds
          per-table load when word granularity meets large segments, and
          gives the batched-coherence path a per-shard scratch clock;
          it never changes detection results *)
  record_trace : bool;
      (** also feed a [Dsm_trace.Recorder] for offline ground truth *)
  trace_reads_from : [ `All_writers | `Last_writer ];
      (** reads-from semantics of the recorded trace: [`All_writers]
          matches the clocks' own causality (a reader absorbs the whole
          write clock), [`Last_writer] is strict happens-before — the
          E8 gap measurement *)
  ordered_locking : bool;
      (** acquire transaction locks in global (pid, offset) order to avoid
          distributed deadlock; [false] reproduces the paper's literal
          src-then-dst order, which can deadlock (see the test suite) *)
  lock_aware_clocks : bool;
      (** extension beyond the paper: propagate causality through
          user-level locks ([Detector.lock]/[Detector.unlock]) by keeping
          a clock per lock — release publishes the holder's clock,
          acquire absorbs it. With the paper's plain clocks ([false],
          the default) lock-disciplined programs produce false positives;
          experiment E11 measures the difference *)
  provenance_depth : int;
      (** how many recent accesses (last writer + recent readers) the
          detector retains per granule so a race can name {e both}
          endpoints (default 4; [0] disables provenance entirely).
          Observation-only: never changes verdicts, schedules or
          fingerprints *)
  memory_model : Dsm_rdma.Model.t;
      (** the memory-model backend whose detector hooks pick the
          happens-before edges derived per message class — which
          accesses acquire the granule's write history, whether RMWs
          serialize through the S clock, whether writes see total store
          order (see {!Dsm_rdma.Model.hooks}). Default
          {!Dsm_rdma.Model.default} ([Nic_atomic], the paper's model).
          Must agree with the machine's model
          ({!Dsm_rdma.Machine.create}'s [?model]) — [Detector.create]
          rejects a mismatch *)
}

val default : t

val name : t -> string
(** Compact descriptor for bench tables, e.g. ["vector+W/piggyback/var"];
    the {!clock_rep} ablation appends ["/dense"], a non-default
    {!memory_model} appends ["/model=<name>"]. *)

val transport_name : transport -> string

val granularity_name : granularity -> string

val clock_wire_name : clock_wire -> string

val validate : t -> t
(** Checks internal consistency (e.g. positive block size); returns the
    config or raises [Invalid_argument]. *)
