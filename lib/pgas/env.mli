(** The PGAS execution environment: a machine, optionally wrapped by the
    race detector.

    Every data movement in this library goes through {!put} / {!get}, so
    switching a whole application between "full performance" and
    "debugging with detection" (the deployment choice §5.1 discusses) is
    one constructor change: [Env.plain m] vs [Env.checked d]. *)

type t

val plain : Dsm_rdma.Machine.t -> t
(** Raw one-sided operations; no clocks, no signals. *)

val checked : Dsm_core.Detector.t -> t
(** All operations go through the detector (Algorithms 1–2). *)

val machine : t -> Dsm_rdma.Machine.t

val detector : t -> Dsm_core.Detector.t option

val n : t -> int

val put :
  t -> Dsm_rdma.Machine.proc ->
  src:Dsm_memory.Addr.region -> dst:Dsm_memory.Addr.region -> unit

val get :
  t -> Dsm_rdma.Machine.proc ->
  src:Dsm_memory.Addr.region -> dst:Dsm_memory.Addr.region -> unit

val put_batch :
  t -> Dsm_rdma.Machine.proc ->
  pairs:(Dsm_memory.Addr.region * Dsm_memory.Addr.region) list -> unit
(** Batched-coherence puts: see [Dsm_core.Detector.put_batch] (checked)
    and [Dsm_rdma.Machine.put_batch] (plain). Pairs must satisfy the
    machine's batching preconditions under a plain environment; the
    checked path additionally falls back to per-op puts for
    non-batchable runs. *)

val get_batch :
  t -> Dsm_rdma.Machine.proc ->
  pairs:(Dsm_memory.Addr.region * Dsm_memory.Addr.region) list -> unit
(** Batched-coherence gets over contiguous source spans. *)

val fetch_add :
  t -> Dsm_rdma.Machine.proc -> target:Dsm_memory.Addr.global -> delta:int ->
  int
(** Atomic add: checked under a checked environment (see
    [Dsm_core.Detector.fetch_add]), raw NIC atomic otherwise. *)

val cas :
  t -> Dsm_rdma.Machine.proc -> target:Dsm_memory.Addr.global ->
  expected:int -> desired:int -> bool
(** Compare-and-swap; [true] iff the swap happened. Under a checked
    environment a failed swap is a read-only RMW (read-marked, not
    write-marked). *)

val atomic_read :
  t -> Dsm_rdma.Machine.proc -> target:Dsm_memory.Addr.global -> int
(** [fetch_add ~delta:0]: reads the word through the NIC's RMW path, so
    the read synchronizes with concurrent RMWs on the word (the acquire
    half of a release/acquire flag) instead of racing with them. *)

val accumulate :
  t -> Dsm_rdma.Machine.proc -> src:Dsm_memory.Addr.region ->
  dst:Dsm_memory.Addr.region -> aop:Dsm_rdma.Message.acc_op -> int array
(** Generalized one-sided accumulate over a whole public span; returns
    the span's prior contents (see [Dsm_rdma.Machine.accumulate]). *)

type lock_handle

val lock : t -> Dsm_rdma.Machine.proc -> Dsm_memory.Addr.region -> lock_handle
(** The NIC lock service; under a checked environment the lock is
    trace-recorded and, with [Config.lock_aware_clocks], carries
    causality (see [Dsm_core.Detector.lock]). *)

val unlock : t -> Dsm_rdma.Machine.proc -> lock_handle -> unit

val register : t -> Dsm_memory.Addr.region -> unit
(** Declare a shared datum (no-op on a plain environment). *)
