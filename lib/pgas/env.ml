module Machine = Dsm_rdma.Machine
module Detector = Dsm_core.Detector

type t = Plain of Machine.t | Checked of Detector.t

let plain m = Plain m

let checked d = Checked d

let machine = function Plain m -> m | Checked d -> Detector.machine d

let detector = function Plain _ -> None | Checked d -> Some d

let n t = Machine.n (machine t)

let put t p ~src ~dst =
  match t with
  | Plain _ -> Machine.put p ~src ~dst ()
  | Checked d -> Detector.put d p ~src ~dst

let get t p ~src ~dst =
  match t with
  | Plain _ -> Machine.get p ~src ~dst ()
  | Checked d -> Detector.get d p ~src ~dst

let put_batch t p ~pairs =
  match t with
  | Plain _ -> Machine.put_batch p ~pairs ()
  | Checked d -> Detector.put_batch d p ~pairs

let get_batch t p ~pairs =
  match t with
  | Plain _ -> Machine.get_batch p ~pairs ()
  | Checked d -> Detector.get_batch d p ~pairs

let fetch_add t p ~target ~delta =
  match t with
  | Plain _ -> Machine.fetch_add p ~target ~delta ()
  | Checked d -> Detector.fetch_add d p ~target ~delta

let cas t p ~target ~expected ~desired =
  match t with
  | Plain _ -> Machine.cas p ~target ~expected ~desired ()
  | Checked d -> Detector.cas d p ~target ~expected ~desired

(* An atomic read is a fetch_add of zero: it rides the NIC's RMW path,
   so it synchronizes with other RMWs on the word instead of racing
   with them — the acquire half of a release/acquire flag. *)
let atomic_read t p ~target = fetch_add t p ~target ~delta:0

let accumulate t p ~src ~dst ~aop =
  match t with
  | Plain _ -> Machine.accumulate p ~src ~dst ~aop ()
  | Checked d -> Detector.accumulate d p ~src ~dst ~aop

type lock_handle =
  | Plain_lock of Machine.token
  | Checked_lock of Detector.lock_handle

let lock t p r =
  match t with
  | Plain _ -> Plain_lock (Machine.lock p r)
  | Checked d -> Checked_lock (Detector.lock d p r)

let unlock t p h =
  match (t, h) with
  | Plain _, Plain_lock tok -> Machine.unlock p tok
  | Checked d, Checked_lock h -> Detector.unlock d p h
  | Plain _, Checked_lock _ | Checked _, Plain_lock _ ->
      invalid_arg "Env.unlock: handle from a different environment"

let register t r =
  match t with Plain _ -> () | Checked d -> Detector.register d r
