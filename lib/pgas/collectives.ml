open Dsm_memory
open Dsm_sim
module Machine = Dsm_rdma.Machine
module Detector = Dsm_core.Detector

let arrive_tag = "pgas.barrier.arrive"

let release_tag = "pgas.barrier.release"

type t = {
  env : Env.t;
  n : int;
  gen_of_pid : int array; (* barriers entered so far, per process *)
  arrivals : (int, int) Hashtbl.t; (* generation -> count at coordinator *)
  releases : (int * int, unit Ivar.t) Hashtbl.t; (* (generation, pid) *)
  bcast_cell : Addr.region array; (* one public word per node *)
  reduce_slots : Addr.region array; (* n public words per node *)
  xfer : Addr.region array; (* n public words per node: scatter/alltoall *)
  scratch : Addr.region array; (* private staging word per node *)
}

let release_ivar t ~generation ~pid =
  let key = (generation, pid) in
  match Hashtbl.find_opt t.releases key with
  | Some iv -> iv
  | None ->
      let iv = Ivar.create () in
      Hashtbl.add t.releases key iv;
      iv

let create env =
  let m = Env.machine env in
  let n = Machine.n m in
  let t =
    {
      env;
      n;
      gen_of_pid = Array.make n 0;
      arrivals = Hashtbl.create 16;
      releases = Hashtbl.create 16;
      bcast_cell =
        Array.init n (fun pid ->
            Machine.alloc_public m ~pid ~name:"pgas.bcast" ~len:1 ());
      reduce_slots =
        Array.init n (fun pid ->
            Machine.alloc_public m ~pid ~name:"pgas.reduce" ~len:n ());
      xfer =
        Array.init n (fun pid ->
            Machine.alloc_public m ~pid ~name:"pgas.xfer" ~len:n ());
      scratch =
        Array.init n (fun pid ->
            Machine.alloc_private m ~pid ~name:"pgas.scratch" ~len:1 ());
    }
  in
  Array.iter (fun r -> Env.register env r) t.bcast_cell;
  (* Register staging slots per word: each slot is written by one process,
     so per-slot clocks avoid false sharing between contributors. *)
  let register_per_word (r : Addr.region) =
    for off = 0 to r.len - 1 do
      Env.register env
        (Addr.region ~pid:r.base.pid ~space:Addr.Public
           ~offset:(r.base.offset + off) ~len:1)
    done
  in
  Array.iter register_per_word t.reduce_slots;
  Array.iter register_per_word t.xfer;
  let sim = Machine.sim m in
  Machine.set_control_handler m ~tag:arrive_tag
    (fun ~node:_ ~origin:_ words ->
      let generation = words.(0) in
      let count =
        (match Hashtbl.find_opt t.arrivals generation with
        | Some c -> c
        | None -> 0)
        + 1
      in
      Hashtbl.replace t.arrivals generation count;
      if count = n then begin
        (* Everyone is in: merge the clocks (the causal content of the
           barrier), then notify every node. *)
        (match Env.detector env with
        | Some d -> Detector.barrier_sync d
        | None -> ());
        for dst = 0 to n - 1 do
          Machine.control_notify m ~src:0 ~dst ~tag:release_tag
            ~words:[| generation |]
        done
      end;
      None);
  Machine.set_control_handler m ~tag:release_tag
    (fun ~node ~origin:_ words ->
      Ivar.fill sim (release_ivar t ~generation:words.(0) ~pid:node) ();
      None);
  t

let env t = t.env

let barrier t p =
  let pid = Machine.pid p in
  let generation = t.gen_of_pid.(pid) in
  t.gen_of_pid.(pid) <- generation + 1;
  let m = Env.machine t.env in
  let time () = Engine.now (Machine.sim m) in
  (match Env.detector t.env with
  | Some d -> Detector.on_barrier d ~pid ~phase:`Enter ~generation ~time:(time ())
  | None -> ());
  Machine.control_async p ~target:0 ~tag:arrive_tag ~words:[| generation |];
  Ivar.read (Machine.sim m) (release_ivar t ~generation ~pid);
  match Env.detector t.env with
  | Some d -> Detector.on_barrier d ~pid ~phase:`Exit ~generation ~time:(time ())
  | None -> ()

let generation t ~pid = t.gen_of_pid.(pid)

let staged t p v =
  let pid = Machine.pid p in
  Dsm_memory.Node_memory.write
    (Machine.node (Env.machine t.env) pid)
    t.scratch.(pid) [| v |];
  t.scratch.(pid)

let read_scratch t p =
  let pid = Machine.pid p in
  (Dsm_memory.Node_memory.read
     (Machine.node (Env.machine t.env) pid)
     t.scratch.(pid)).(0)

let broadcast t p ~root value =
  let pid = Machine.pid p in
  (match (pid = root, value) with
  | true, None -> invalid_arg "Collectives.broadcast: root must supply a value"
  | false, Some _ ->
      invalid_arg "Collectives.broadcast: only the root supplies a value"
  | true, Some v -> Env.put t.env p ~src:(staged t p v) ~dst:t.bcast_cell.(root)
  | false, None -> ());
  barrier t p;
  let result =
    match value with
    | Some v -> v
    | None ->
        Env.get t.env p ~src:t.bcast_cell.(root) ~dst:t.scratch.(pid);
        read_scratch t p
  in
  (* Close the read phase so a subsequent broadcast's publish cannot race
     with a straggler's get. *)
  barrier t p;
  result

let slot t ~root ~pid =
  let (r : Addr.region) = t.reduce_slots.(root) in
  Addr.region ~pid:r.base.pid ~space:Addr.Public ~offset:(r.base.offset + pid)
    ~len:1

let reduce_gather t p ~root ~value =
  let pid = Machine.pid p in
  Env.put t.env p ~src:(staged t p value) ~dst:(slot t ~root ~pid);
  barrier t p;
  let result =
    if pid <> root then None
    else begin
      let sum = ref 0 in
      for contributor = 0 to t.n - 1 do
        Env.get t.env p ~src:(slot t ~root ~pid:contributor)
          ~dst:t.scratch.(pid);
        sum := !sum + read_scratch t p
      done;
      Some !sum
    end
  in
  barrier t p;
  result

(* Word [sender] of [node]'s transfer area. *)
let xfer_slot t ~node ~sender =
  let (r : Addr.region) = t.xfer.(node) in
  Addr.region ~pid:r.base.pid ~space:Addr.Public
    ~offset:(r.base.offset + sender) ~len:1

let read_slot t p r =
  let pid = Machine.pid p in
  Env.get t.env p ~src:r ~dst:t.scratch.(pid);
  read_scratch t p

let scatter t p ~root values =
  let pid = Machine.pid p in
  (match (pid = root, values) with
  | true, None -> invalid_arg "Collectives.scatter: root must supply values"
  | false, Some _ ->
      invalid_arg "Collectives.scatter: only the root supplies values"
  | true, Some v when Array.length v <> t.n ->
      invalid_arg "Collectives.scatter: need one value per process"
  | true, Some v ->
      for j = 0 to t.n - 1 do
        Env.put t.env p ~src:(staged t p v.(j))
          ~dst:(xfer_slot t ~node:j ~sender:root)
      done
  | false, None -> ());
  barrier t p;
  let mine = read_slot t p (xfer_slot t ~node:pid ~sender:root) in
  barrier t p;
  mine

let gather t p ~root ~value =
  let pid = Machine.pid p in
  Env.put t.env p ~src:(staged t p value) ~dst:(slot t ~root ~pid);
  barrier t p;
  let result =
    if pid <> root then None
    else
      Some
        (Array.init t.n (fun contributor ->
             read_slot t p (slot t ~root ~pid:contributor)))
  in
  barrier t p;
  result

let alltoall t p ~values =
  if Array.length values <> t.n then
    invalid_arg "Collectives.alltoall: need one value per process";
  let pid = Machine.pid p in
  for j = 0 to t.n - 1 do
    Env.put t.env p ~src:(staged t p values.(j))
      ~dst:(xfer_slot t ~node:j ~sender:pid)
  done;
  barrier t p;
  let received =
    Array.init t.n (fun sender ->
        read_slot t p (xfer_slot t ~node:pid ~sender))
  in
  barrier t p;
  received

(* The §5.2 one-sided reduction, generalized to any accumulate operator.
   The caller alone pulls the whole distributed array — no participation
   from the owners — but instead of one get per element it stages each
   owner's span with a single batched get (the owner's elements are
   contiguous in its chunk under every layout, so each node costs one
   request/data round trip) and folds locally with [Message.apply_acc].
   Detection is per element, exactly as if each get were issued alone. *)
let reduce_onesided t p ?(aop = Dsm_rdma.Message.Add) array =
  if Shared_array.elem_words array <> 1 then
    invalid_arg "Collectives.reduce_onesided: single-word elements only";
  let len = Shared_array.length array in
  let m = Env.machine t.env in
  let pid = Machine.pid p in
  let stage = Machine.alloc_private m ~pid ~name:"pgas.reduce1s" ~len () in
  let next = ref 0 in
  for owner = 0 to t.n - 1 do
    let pairs =
      List.map
        (fun i ->
          let dst =
            Addr.region ~pid ~space:Addr.Private
              ~offset:(stage.base.offset + !next) ~len:1
          in
          incr next;
          (Shared_array.region_of array i, dst))
        (Shared_array.my_indices array ~pid:owner)
    in
    if pairs <> [] then Env.get_batch t.env p ~pairs
  done;
  let words = Node_memory.read (Machine.node m pid) stage in
  Array.fold_left
    (fun acc v ->
      match acc with
      | None -> Some v
      | Some a -> Some (Dsm_rdma.Message.apply_acc aop a v))
    None words
  |> Option.get

let reduce_onesided_sum t p array =
  reduce_onesided t p ~aop:Dsm_rdma.Message.Add array

let allreduce t p ~value =
  match reduce_gather t p ~root:0 ~value with
  | Some sum -> broadcast t p ~root:0 (Some sum)
  | None -> broadcast t p ~root:0 None
