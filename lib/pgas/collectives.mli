(** Collective operations over the PGAS environment.

    {!barrier} is a centralized coordinator on node 0: each participant
    sends an arrival message, and the coordinator broadcasts the release
    once everyone arrived (2n messages, all priced by the fabric). Under a
    checked environment the barrier also merges the process clocks
    ({!Dsm_core.Detector.barrier_sync}) and records trace sync events, so
    post-barrier accesses are causally ordered after pre-barrier ones.

    {!reduce_gather} is the conventional collective reduction — everyone
    participates. {!reduce_onesided_sum} is the paper's §5.2 proposal: a
    single process reduces data held by all others {e with no
    participation on their side}, using only one-sided gets. Experiment
    E10 compares them. *)

type t

val create : Env.t -> t
(** Installs the coordinator services on the machine's NICs and allocates
    the collective staging cells. At most one per machine. All [n] nodes
    are participants in every collective. *)

val env : t -> Env.t

val barrier : t -> Dsm_rdma.Machine.proc -> unit
(** Blocks until every process has entered the same barrier generation.
    Every process must call barriers the same number of times (SPMD). *)

val generation : t -> pid:int -> int
(** Barrier generations completed by [pid] so far. *)

val broadcast : t -> Dsm_rdma.Machine.proc -> root:int -> int option -> int
(** [broadcast c p ~root v] returns the root's value on every process.
    The root passes [Some value]; the others pass [None]. Implemented as
    a root publish + barrier + one-sided gets + barrier.
    Raises [Invalid_argument] if the root does not supply a value or a
    non-root does. *)

val reduce_gather :
  t -> Dsm_rdma.Machine.proc -> root:int -> value:int -> int option
(** Conventional sum reduction: every process pushes its contribution into
    the root's slot array, a barrier closes the gather phase, and the root
    folds locally. [Some sum] at the root, [None] elsewhere. *)

val reduce_onesided :
  t -> Dsm_rdma.Machine.proc -> ?aop:Dsm_rdma.Message.acc_op ->
  Shared_array.t -> int
(** §5.2: the calling process alone folds a distributed array with
    one-sided gets — "a reduction without any participation of the other
    processes" — generalized to any accumulate operator (default
    {!Dsm_rdma.Message.Add}). Each owner's contiguous span is staged
    with one batched get ({!Env.get_batch}), then folded locally.
    Single-word elements only. Any process may call it, at any time;
    whether that is safe is exactly what the race detector decides (see
    the tests: unsynchronized calls are flagged, post-barrier calls are
    clean). *)

val reduce_onesided_sum :
  t -> Dsm_rdma.Machine.proc -> Shared_array.t -> int
(** [reduce_onesided ~aop:Add]. *)

val allreduce : t -> Dsm_rdma.Machine.proc -> value:int -> int
(** Sum reduction whose result reaches every process: a gather to node 0
    followed by a broadcast. *)

val scatter :
  t -> Dsm_rdma.Machine.proc -> root:int -> int array option -> int
(** [scatter c p ~root v] distributes one value per process from the
    root's array ([Some values] of length [n] at the root, [None]
    elsewhere); returns this process's element. One-sided: the root
    pushes each slot; a barrier closes the phase.
    Raises [Invalid_argument] on a wrong-length array or a non-root
    supplying values. *)

val gather :
  t -> Dsm_rdma.Machine.proc -> root:int -> value:int -> int array option
(** Inverse of {!scatter}: everyone pushes its value to the root's slot
    array; [Some values] at the root after a closing barrier. *)

val alltoall : t -> Dsm_rdma.Machine.proc -> values:int array -> int array
(** [alltoall c p ~values] sends [values.(j)] to process [j] and returns
    the array of values received from every process (index = sender).
    [values] must have length [n]. n² one-sided puts, two barriers. *)
