(* Tests for dsm_rdma: one-sided semantics, atomicity (Figure 3), locks,
   atomics, control plane, one-sidedness. *)

open Dsm_sim
open Dsm_memory
open Dsm_rdma

let make ?(n = 3) ?latency ?seed () =
  let sim = Engine.create ?seed () in
  let m = Machine.create sim ~n ?latency () in
  (sim, m)

let expect_completed m =
  match Machine.run m with
  | Engine.Completed -> ()
  | outcome ->
      Alcotest.failf "simulation did not complete: %s"
        (match outcome with
        | Engine.Blocked k -> Printf.sprintf "blocked(%d)" k
        | Engine.Stopped -> "stopped"
        | Engine.Time_limit_reached -> "time limit"
        | Engine.Event_limit_reached -> "event limit"
        | Engine.Completed -> "completed")

(* ---------- put / get basics ---------- *)

let test_put_writes_remote () =
  let _, m = make () in
  let dst = Machine.alloc_public m ~pid:1 ~len:3 () in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:3 () in
      Node_memory.write (Machine.node m 0) src [| 7; 8; 9 |];
      Machine.put p ~src ~dst ());
  expect_completed m;
  Alcotest.(check (array int)) "remote memory written" [| 7; 8; 9 |]
    (Node_memory.read (Machine.node m 1) dst)

let test_get_reads_remote () =
  let _, m = make () in
  let src = Machine.alloc_public m ~pid:2 ~len:4 () in
  Node_memory.write (Machine.node m 2) src [| 4; 3; 2; 1 |];
  let result = ref [||] in
  Machine.spawn m ~pid:0 (fun p ->
      let dst = Machine.alloc_private m ~pid:0 ~len:4 () in
      Machine.get p ~src ~dst ();
      result := Node_memory.read (Machine.node m 0) dst);
  expect_completed m;
  Alcotest.(check (array int)) "data fetched" [| 4; 3; 2; 1 |] !result

let test_put_is_one_message_get_is_two () =
  let _, m = make () in
  let dst = Machine.alloc_public m ~pid:1 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:1 () in
      (* Unacked put: the paper's bare one-message put (§3.2). *)
      Machine.put p ~src ~dst ~ack:false ());
  expect_completed m;
  Alcotest.(check int) "put = 1 message" 1 (Machine.fabric_messages m);
  Machine.reset_traffic_counters m;
  let src = Machine.alloc_public m ~pid:1 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let dst = Machine.alloc_private m ~pid:0 ~len:1 () in
      Machine.get p ~src ~dst ());
  expect_completed m;
  Alcotest.(check int) "get = 2 messages" 2 (Machine.fabric_messages m)

let test_put_length_mismatch_rejected () =
  let _, m = make () in
  let dst = Machine.alloc_public m ~pid:1 ~len:2 () in
  let failed = ref false in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:3 () in
      try Machine.put p ~src ~dst () with Invalid_argument _ -> failed := true);
  expect_completed m;
  Alcotest.(check bool) "rejected" true !failed

let test_put_to_private_rejected () =
  let _, m = make () in
  let dst = Machine.alloc_private m ~pid:1 ~len:1 () in
  let failed = ref false in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:1 () in
      try Machine.put p ~src ~dst () with Invalid_argument _ -> failed := true);
  expect_completed m;
  Alcotest.(check bool) "private is not remotely writable" true !failed

let test_put_from_foreign_src_rejected () =
  let _, m = make () in
  let dst = Machine.alloc_public m ~pid:1 ~len:1 () in
  let foreign_src = Machine.alloc_public m ~pid:2 ~len:1 () in
  let failed = ref false in
  Machine.spawn m ~pid:0 (fun p ->
      try Machine.put p ~src:foreign_src ~dst ()
      with Invalid_argument _ -> failed := true);
  expect_completed m;
  Alcotest.(check bool) "src must be local" true !failed

let test_self_put () =
  let _, m = make () in
  let dst = Machine.alloc_public m ~pid:0 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:1 () in
      Node_memory.write (Machine.node m 0) src [| 123 |];
      Machine.put p ~src ~dst ());
  expect_completed m;
  Alcotest.(check (array int)) "loopback put" [| 123 |]
    (Node_memory.read (Machine.node m 0) dst)

let test_one_sidedness () =
  (* The target node runs NO program at all: remote accesses must still
     work — OS bypass, §3.2. *)
  let _, m = make ~n:2 () in
  let area = Machine.alloc_public m ~pid:1 ~len:1 () in
  let seen = ref 0 in
  Machine.spawn m ~pid:0 (fun p ->
      let buf = Machine.alloc_private m ~pid:0 ~len:1 () in
      Node_memory.write (Machine.node m 0) buf [| 55 |];
      Machine.put p ~src:buf ~dst:area ();
      let back = Machine.alloc_private m ~pid:0 ~len:1 () in
      Machine.get p ~src:area ~dst:back ();
      seen := (Node_memory.read (Machine.node m 0) back).(0));
  expect_completed m;
  Alcotest.(check int) "read back through NIC only" 55 !seen

let test_copy_within_public_space () =
  (* §3.2: "Communications can also be done within the public space, when
     data is copied from a place that has affinity to a process to a
     place that has affinity to another process" — here P0 moves P1's
     data to P2 with a get + put, running no code on P1 or P2. *)
  let _, m = make () in
  let src = Machine.alloc_public m ~pid:1 ~len:3 () in
  Node_memory.write (Machine.node m 1) src [| 7; 8; 9 |];
  let dst = Machine.alloc_public m ~pid:2 ~len:3 () in
  Machine.spawn m ~pid:0 (fun p ->
      let bounce = Machine.alloc_private m ~pid:0 ~len:3 () in
      Machine.get p ~src ~dst:bounce ();
      Machine.put p ~src:bounce ~dst ());
  expect_completed m;
  Alcotest.(check (array int)) "moved across publics" [| 7; 8; 9 |]
    (Node_memory.read (Machine.node m 2) dst)

(* ---------- timing / Figure 3 ---------- *)

let test_put_latency_blocking () =
  let _, m = make ~latency:(Dsm_net.Latency.Constant 1.0) () in
  let dst = Machine.alloc_public m ~pid:1 ~len:1 () in
  let t_done = ref 0. in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:1 () in
      Machine.put p ~src ~dst ();
      t_done := Engine.now (Machine.sim m));
  expect_completed m;
  (* 1 us for the put + 1 us for the ack *)
  Alcotest.(check (float 1e-6)) "blocking put RTT" 2.0 !t_done

let test_figure3_put_delayed_by_get () =
  (* P2 gets a large region from P1 into its public dst; while the get is
     in flight P0 puts to the same dst. The put must be delayed until the
     get completes, and the final value must be the put's. *)
  let _, m = make ~latency:(Dsm_net.Latency.Constant 1.0) () in
  let src1 = Machine.alloc_public m ~pid:1 ~len:4 () in
  Node_memory.write (Machine.node m 1) src1 [| 1; 1; 1; 1 |];
  let dst2 = Machine.alloc_public m ~pid:2 ~len:4 () in
  let get_done = ref 0. and put_done = ref 0. in
  Machine.spawn m ~pid:2 (fun p ->
      Machine.get p ~src:src1 ~dst:dst2 ();
      get_done := Engine.now (Machine.sim m));
  Machine.spawn m ~pid:0 (fun p ->
      Machine.compute p 0.5;
      let buf = Machine.alloc_private m ~pid:0 ~len:4 () in
      Node_memory.write (Machine.node m 0) buf [| 2; 2; 2; 2 |];
      Machine.put p ~src:buf ~dst:dst2 ();
      put_done := Engine.now (Machine.sim m));
  expect_completed m;
  (* Get: request arrives at 1.0, reply at 2.0. Put: sent 0.5, arrives 1.5
     — inside the get's window — so its write waits until 2.0; ack lands
     at 3.0. *)
  Alcotest.(check (float 1e-6)) "get completes at 2" 2.0 !get_done;
  Alcotest.(check bool) "put delayed past get" true (!put_done >= 3.0 -. 1e-9);
  Alcotest.(check (array int)) "put applied after get" [| 2; 2; 2; 2 |]
    (Node_memory.read (Machine.node m 2) dst2)

let test_put_not_delayed_on_disjoint_region () =
  let _, m = make ~latency:(Dsm_net.Latency.Constant 1.0) () in
  let src1 = Machine.alloc_public m ~pid:1 ~len:4 () in
  let dst2 = Machine.alloc_public m ~pid:2 ~len:4 () in
  let other2 = Machine.alloc_public m ~pid:2 ~len:4 () in
  let put_done = ref 0. in
  Machine.spawn m ~pid:2 (fun p -> Machine.get p ~src:src1 ~dst:dst2 ());
  Machine.spawn m ~pid:0 (fun p ->
      Machine.compute p 0.5;
      let buf = Machine.alloc_private m ~pid:0 ~len:4 () in
      Machine.put p ~src:buf ~dst:other2 ();
      put_done := Engine.now (Machine.sim m));
  expect_completed m;
  (* Undelayed: send at 0.5, write at 1.5, ack at 2.5. *)
  Alcotest.(check (float 1e-6)) "no interference" 2.5 !put_done

(* ---------- atomics ---------- *)

let test_fetch_add_returns_old () =
  let _, m = make () in
  let counter = Machine.alloc_public m ~pid:1 ~len:1 () in
  Node_memory.write (Machine.node m 1) counter [| 10 |];
  let old = ref (-1) in
  Machine.spawn m ~pid:0 (fun p ->
      old := Machine.fetch_add p ~target:counter.Addr.base ~delta:5 ());
  expect_completed m;
  Alcotest.(check int) "old value" 10 !old;
  Alcotest.(check (array int)) "incremented" [| 15 |]
    (Node_memory.read (Machine.node m 1) counter)

let test_fetch_add_concurrent_total () =
  let _, m = make ~n:5 () in
  let counter = Machine.alloc_public m ~pid:0 ~len:1 () in
  for pid = 1 to 4 do
    Machine.spawn m ~pid (fun p ->
        for _ = 1 to 10 do
          ignore (Machine.fetch_add p ~target:counter.Addr.base ~delta:1 ())
        done)
  done;
  expect_completed m;
  Alcotest.(check (array int)) "no lost updates" [| 40 |]
    (Node_memory.read (Machine.node m 0) counter)

let test_cas_semantics () =
  let _, m = make () in
  let cell = Machine.alloc_public m ~pid:1 ~len:1 () in
  let r1 = ref false and r2 = ref false in
  Machine.spawn m ~pid:0 (fun p ->
      r1 := Machine.cas p ~target:cell.Addr.base ~expected:0 ~desired:9 ();
      r2 := Machine.cas p ~target:cell.Addr.base ~expected:0 ~desired:5 ());
  expect_completed m;
  Alcotest.(check bool) "first cas wins" true !r1;
  Alcotest.(check bool) "second cas fails" false !r2;
  Alcotest.(check (array int)) "value" [| 9 |]
    (Node_memory.read (Machine.node m 1) cell)

let test_concurrent_gets_serialize_but_complete () =
  (* Reads take the target's range lock exclusively in this NIC model, so
     two concurrent gets on one region serialize — and both complete. *)
  let _, m = make ~latency:(Dsm_net.Latency.Constant 1.0) () in
  let src = Machine.alloc_public m ~pid:0 ~len:64 () in
  let done_times = ref [] in
  for pid = 1 to 2 do
    Machine.spawn m ~pid (fun p ->
        let dst = Machine.alloc_private m ~pid ~len:64 () in
        Machine.get p ~src ~dst ();
        done_times := Engine.now (Machine.sim m) :: !done_times)
  done;
  expect_completed m;
  Alcotest.(check int) "both finished" 2 (List.length !done_times)

let test_control_handler_sees_origin () =
  let _, m = make () in
  Machine.set_control_handler m ~tag:"who" (fun ~node ~origin _ ->
      Some [| node; origin |]);
  let reply = ref [||] in
  Machine.spawn m ~pid:2 (fun p ->
      reply := Machine.control p ~target:1 ~tag:"who" ~words:[||]);
  expect_completed m;
  Alcotest.(check (array int)) "node and origin" [| 1; 2 |] !reply

let test_proc_out_of_range () =
  let _, m = make () in
  Alcotest.check_raises "pid range"
    (Invalid_argument "Machine.proc: pid out of range") (fun () ->
      ignore (Machine.proc m ~pid:99))

let test_topology_mismatch_rejected () =
  let sim = Engine.create () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Machine.create: topology node count differs from n")
    (fun () ->
      ignore
        (Machine.create sim ~n:4 ~topology:(Dsm_net.Topology.Ring 3) ()))

(* ---------- lock service ---------- *)

let test_remote_lock_excludes_put () =
  let _, m = make ~latency:(Dsm_net.Latency.Constant 1.0) () in
  let area = Machine.alloc_public m ~pid:1 ~len:2 () in
  let put_done = ref 0. in
  Machine.spawn m ~pid:0 (fun p ->
      let tok = Machine.lock p area in
      Machine.compute p 10.0;
      Machine.unlock p tok);
  Machine.spawn m ~pid:2 (fun p ->
      Machine.compute p 3.0;
      let buf = Machine.alloc_private m ~pid:2 ~len:2 () in
      Machine.put p ~src:buf ~dst:area ();
      put_done := Engine.now (Machine.sim m));
  expect_completed m;
  (* Lock granted ~2.0, held until 12.0 + unlock message arrives 13.0; the
     put (arriving ~4.0) writes only after that. *)
  Alcotest.(check bool) "put waited for the lock" true (!put_done >= 13.0 -. 1e-6)

let test_lock_private_foreign_rejected () =
  let _, m = make () in
  let foreign = Machine.alloc_private m ~pid:1 ~len:1 () in
  let failed = ref false in
  Machine.spawn m ~pid:0 (fun p ->
      try ignore (Machine.lock p foreign)
      with Invalid_argument _ -> failed := true);
  expect_completed m;
  Alcotest.(check bool) "rejected" true !failed

let test_own_private_lock_is_free () =
  let _, m = make () in
  let mine = Machine.alloc_private m ~pid:0 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let tok = Machine.lock p mine in
      Machine.unlock p tok);
  expect_completed m;
  Alcotest.(check int) "no messages for private locks" 0
    (Machine.fabric_messages m)

let test_deadlock_detected_as_blocked () =
  (* Failure injection: opposite lock orders must deadlock, and the engine
     must report it rather than hang. *)
  let _, m = make ~latency:(Dsm_net.Latency.Constant 1.0) () in
  let r1 = Machine.alloc_public m ~pid:1 ~len:1 () in
  let r2 = Machine.alloc_public m ~pid:2 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let t1 = Machine.lock p r1 in
      Machine.compute p 5.0;
      let t2 = Machine.lock p r2 in
      Machine.unlock p t2;
      Machine.unlock p t1);
  Machine.spawn m ~pid:2 (fun p ->
      let t2 = Machine.lock p r2 in
      Machine.compute p 5.0;
      let t1 = Machine.lock p r1 in
      Machine.unlock p t1;
      Machine.unlock p t2);
  (match Machine.run m with
  | Engine.Blocked k -> Alcotest.(check int) "both stuck" 2 k
  | _ -> Alcotest.fail "expected deadlock to surface as Blocked")

let test_lossy_fabric_blocks_operations () =
  (* The one-sided protocols assume reliable delivery (as InfiniBand
     provides); on a lossy fabric a blocking put eventually loses its
     data or ack message and the initiator stays suspended — which the
     engine reports rather than hiding. *)
  let sim = Engine.create ~seed:5 () in
  let m =
    Machine.create sim ~n:2 ~latency:(Dsm_net.Latency.Constant 1.0)
      ~drop_probability:0.4 ()
  in
  let dst = Machine.alloc_public m ~pid:1 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:1 () in
      for _ = 1 to 50 do
        Machine.put p ~src ~dst ()
      done);
  match Machine.run m with
  | Engine.Blocked 1 -> ()
  | Engine.Completed ->
      Alcotest.fail "50 puts at 40% loss should have lost a message"
  | _ -> Alcotest.fail "unexpected outcome"

(* ---------- raw path ---------- *)

let test_raw_put_bypasses_lock () =
  let _, m = make ~latency:(Dsm_net.Latency.Constant 1.0) () in
  let area = Machine.alloc_public m ~pid:1 ~len:1 () in
  let raw_done = ref 0. in
  Machine.spawn m ~pid:0 (fun p ->
      (* Hold the lock ourselves, as a detector transaction would... *)
      let tok = Machine.lock p area in
      let buf = Machine.alloc_private m ~pid:0 ~len:1 () in
      Node_memory.write (Machine.node m 0) buf [| 77 |];
      (* ...the raw put must go through even though the range is locked. *)
      Machine.raw_put p ~src:buf ~dst:area ();
      raw_done := Engine.now (Machine.sim m);
      Machine.unlock p tok);
  expect_completed m;
  Alcotest.(check (array int)) "written" [| 77 |]
    (Node_memory.read (Machine.node m 1) area);
  Alcotest.(check bool) "did not self-deadlock" true (!raw_done > 0.)

let test_raw_read_returns_words () =
  let _, m = make () in
  let area = Machine.alloc_public m ~pid:1 ~len:3 () in
  Node_memory.write (Machine.node m 1) area [| 5; 6; 7 |];
  let words = ref [||] in
  Machine.spawn m ~pid:0 (fun p -> words := Machine.raw_read p ~src:area);
  expect_completed m;
  Alcotest.(check (array int)) "raw read" [| 5; 6; 7 |] !words

let test_extra_words_charged () =
  let _, m = make () in
  let dst = Machine.alloc_public m ~pid:1 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:1 () in
      Machine.put p ~src ~dst ~extra_words:10 ~ack:false ());
  expect_completed m;
  (* header(2) + payload(1) + extra(10) *)
  Alcotest.(check int) "piggyback priced" 13 (Machine.fabric_words m)

(* ---------- control plane ---------- *)

let test_control_roundtrip () =
  let _, m = make () in
  Machine.set_control_handler m ~tag:"sum" (fun ~node:_ ~origin:_ words ->
      Some [| Array.fold_left ( + ) 0 words |]);
  let result = ref [||] in
  Machine.spawn m ~pid:0 (fun p ->
      result := Machine.control p ~target:2 ~tag:"sum" ~words:[| 1; 2; 3 |]);
  expect_completed m;
  Alcotest.(check (array int)) "service reply" [| 6 |] !result

let test_control_async_fire_and_forget () =
  let _, m = make () in
  let hits = ref [] in
  Machine.set_control_handler m ~tag:"log" (fun ~node ~origin words ->
      hits := (node, origin, words.(0)) :: !hits;
      None);
  Machine.spawn m ~pid:0 (fun p ->
      Machine.control_async p ~target:1 ~tag:"log" ~words:[| 42 |]);
  expect_completed m;
  Alcotest.(check (list (triple int int int))) "handler ran" [ (1, 0, 42) ]
    !hits

let test_control_unknown_tag_fails () =
  let _, m = make () in
  Machine.spawn m ~pid:0 (fun p ->
      ignore (Machine.control p ~target:1 ~tag:"nope" ~words:[||]));
  match Machine.run m with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions tag" true
        (String.length msg > 0
        && String.contains msg 'n' (* "no control handler for tag" *))
  | _ -> Alcotest.fail "expected failure"

let test_duplicate_control_tag_rejected () =
  let _, m = make () in
  Machine.set_control_handler m ~tag:"t" (fun ~node:_ ~origin:_ _ -> None);
  Alcotest.check_raises "dup"
    (Invalid_argument "Machine.set_control_handler: tag \"t\" is taken")
    (fun () ->
      Machine.set_control_handler m ~tag:"t" (fun ~node:_ ~origin:_ _ -> None))

(* ---------- observation ---------- *)

let test_observer_sees_messages () =
  let _, m = make () in
  let sent = ref 0 and delivered = ref 0 in
  Machine.add_observer m (function
    | Machine.Sent _ -> incr sent
    | Machine.Delivered _ -> incr delivered
    | Machine.Write_applied _ | Machine.Read_served _
    | Machine.Atomic_applied _ | Machine.Acc_applied _ ->
        ());
  let dst = Machine.alloc_public m ~pid:1 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      let src = Machine.alloc_private m ~pid:0 ~len:1 () in
      Machine.put p ~src ~dst ());
  expect_completed m;
  Alcotest.(check int) "2 sends (put + ack)" 2 !sent;
  Alcotest.(check int) "2 deliveries" 2 !delivered

let test_spawn_all_spmd () =
  let _, m = make ~n:4 () in
  let counter = Machine.alloc_public m ~pid:0 ~len:1 () in
  Machine.spawn_all m (fun p ->
      ignore (Machine.fetch_add p ~target:counter.Addr.base ~delta:1 ()));
  expect_completed m;
  Alcotest.(check (array int)) "all ran" [| 4 |]
    (Node_memory.read (Machine.node m 0) counter)

let () =
  Alcotest.run "rdma"
    [
      ( "put-get",
        [
          Alcotest.test_case "put writes remote" `Quick test_put_writes_remote;
          Alcotest.test_case "get reads remote" `Quick test_get_reads_remote;
          Alcotest.test_case "message counts" `Quick test_put_is_one_message_get_is_two;
          Alcotest.test_case "length mismatch" `Quick test_put_length_mismatch_rejected;
          Alcotest.test_case "private dst rejected" `Quick test_put_to_private_rejected;
          Alcotest.test_case "foreign src rejected" `Quick test_put_from_foreign_src_rejected;
          Alcotest.test_case "self put" `Quick test_self_put;
          Alcotest.test_case "one-sidedness" `Quick test_one_sidedness;
          Alcotest.test_case "concurrent gets" `Quick test_concurrent_gets_serialize_but_complete;
          Alcotest.test_case "control origin" `Quick test_control_handler_sees_origin;
          Alcotest.test_case "proc range" `Quick test_proc_out_of_range;
          Alcotest.test_case "topology mismatch" `Quick test_topology_mismatch_rejected;
          Alcotest.test_case "public-to-public copy" `Quick test_copy_within_public_space;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "blocking put RTT" `Quick test_put_latency_blocking;
          Alcotest.test_case "figure 3" `Quick test_figure3_put_delayed_by_get;
          Alcotest.test_case "disjoint regions" `Quick test_put_not_delayed_on_disjoint_region;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "fetch_add old" `Quick test_fetch_add_returns_old;
          Alcotest.test_case "no lost updates" `Quick test_fetch_add_concurrent_total;
          Alcotest.test_case "cas" `Quick test_cas_semantics;
        ] );
      ( "locks",
        [
          Alcotest.test_case "remote lock excludes" `Quick test_remote_lock_excludes_put;
          Alcotest.test_case "foreign private" `Quick test_lock_private_foreign_rejected;
          Alcotest.test_case "own private free" `Quick test_own_private_lock_is_free;
          Alcotest.test_case "deadlock -> Blocked" `Quick test_deadlock_detected_as_blocked;
        ] );
      ( "faults",
        [
          Alcotest.test_case "lossy fabric blocks" `Quick
            test_lossy_fabric_blocks_operations;
        ] );
      ( "raw",
        [
          Alcotest.test_case "raw put bypasses" `Quick test_raw_put_bypasses_lock;
          Alcotest.test_case "raw read" `Quick test_raw_read_returns_words;
          Alcotest.test_case "extra words" `Quick test_extra_words_charged;
        ] );
      ( "control",
        [
          Alcotest.test_case "roundtrip" `Quick test_control_roundtrip;
          Alcotest.test_case "async" `Quick test_control_async_fire_and_forget;
          Alcotest.test_case "unknown tag" `Quick test_control_unknown_tag_fails;
          Alcotest.test_case "duplicate tag" `Quick test_duplicate_control_tag_rejected;
        ] );
      ( "misc",
        [
          Alcotest.test_case "observer" `Quick test_observer_sees_messages;
          Alcotest.test_case "spawn_all" `Quick test_spawn_all_spmd;
        ] );
    ]
