(* ISSUE 10: the memory-model conformance and differential suite.

   Three layers of evidence that the model refactor is sound:

   1. Golden fingerprints recorded on the pre-refactor tree pin
      [Nic_atomic] — the default — to the exact behavior the paper's
      model had before ordering assumptions moved behind
      [Dsm_rdma.Model]: races, race CSV, message/word counts, simulated
      time, coherence verdicts, final memory and final process clocks,
      over all three clock representations with and without the planted
      protocol bugs, plus explorer fingerprints over the stock
      scenarios.

   2. A 500+-schedule randomized sweep holding the default-model
      construction (no [~model], no [memory_model]) bit-identical to the
      explicit [Nic_atomic] construction, and the three clock
      representations identical to each other, on every schedule.

   3. Differential properties: the sequentially-consistent reference
      never races where every weaker backend is silent (union over a
      budget of depth-8 schedules), and cross-model replay tokens
      round-trip — same model replays bit-identically, a garbage model
      field is a clean [Error]. *)

open Dsm_sim
open Dsm_memory
module Machine = Dsm_rdma.Machine
module Coherence = Dsm_rdma.Coherence
module Model = Dsm_rdma.Model
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Explore = Dsm_explore.Explore
module Scenario = Dsm_explore.Scenario
module Token = Dsm_explore.Token

(* Mirrors the pre-refactor golden recorder exactly: same machine, same
   op mix, same fingerprint fields. [model = None] uses the default
   construction paths (no [~model] on the machine, no [memory_model] in
   the config) — the paths every pre-refactor caller used. *)
let run_once ?model ~clock_rep ~n ~seed ~ops ~bugs () =
  let sim = Engine.create ~seed () in
  let latency =
    Dsm_net.Latency.Jittered
      { model = Dsm_net.Latency.Constant 1.0; mean_jitter = 2.0 }
  in
  let m =
    match model with
    | None -> Machine.create sim ~n ~latency ~protocol_bugs:bugs ()
    | Some model ->
        Machine.create sim ~n ~latency ~protocol_bugs:bugs ~model ()
  in
  let checker = Coherence.attach m in
  let config =
    { Config.default with Config.granularity = Config.Word; clock_rep }
  in
  let config =
    match model with
    | None -> config
    | Some model -> { config with Config.memory_model = model }
  in
  let d = Detector.create m ~config () in
  let nvars = max 3 (n / 2) in
  let vars =
    Array.init nvars (fun i ->
        Machine.alloc_public m ~pid:(i mod n)
          ~name:(Printf.sprintf "v%d" i)
          ~len:4 ())
  in
  let mutexes =
    Array.init nvars (fun i ->
        Machine.alloc_public m ~pid:(i mod n)
          ~name:(Printf.sprintf "m%d" i)
          ~len:1 ())
  in
  for pid = 0 to n - 1 do
    let g = Prng.create ~seed:(seed + (97 * pid)) in
    let plan =
      List.init ops (fun _ ->
          (Prng.int g 6, Prng.int g nvars, Prng.int g 4, Prng.float g 15.0))
    in
    Machine.spawn m ~pid (fun p ->
        let buf = Machine.alloc_private m ~pid ~len:4 () in
        List.iter
          (fun (op, v, word, think) ->
            Machine.compute p think;
            let var = vars.(v) in
            let target =
              Addr.global ~pid:var.Addr.base.pid ~space:Addr.Public
                ~offset:(var.Addr.base.offset + word)
            in
            match op with
            | 0 -> Detector.put d p ~src:buf ~dst:var
            | 1 -> Detector.get d p ~src:var ~dst:buf
            | 2 -> ignore (Detector.fetch_add d p ~target ~delta:1)
            | 3 ->
                ignore
                  (Detector.cas d p ~target ~expected:0 ~desired:(pid + 1))
            | 4 ->
                let aop = [| Dsm_rdma.Message.Add; Min; Max; Bor |].(word) in
                ignore (Detector.accumulate d p ~src:buf ~dst:var ~aop)
            | _ ->
                let h = Detector.lock d p mutexes.(v) in
                let cell =
                  Addr.region ~pid:var.Addr.base.pid ~space:Addr.Public
                    ~offset:(var.Addr.base.offset + word)
                    ~len:1
                in
                let scratch = Machine.alloc_private m ~pid ~len:1 () in
                Detector.get d p ~src:cell ~dst:scratch;
                Detector.put d p ~src:scratch ~dst:cell;
                Detector.unlock d p h)
          plan)
  done;
  (match Machine.run m with
  | Engine.Completed -> ()
  | _ -> failwith (Printf.sprintf "seed %d did not complete" seed));
  let fp =
    String.concat "|"
      [
        string_of_int (Report.count (Detector.report d));
        Report.to_csv (Detector.report d);
        string_of_int (Machine.fabric_messages m);
        string_of_int (Machine.fabric_words m);
        Printf.sprintf "%.6f" (Engine.now sim);
        string_of_int (List.length (Coherence.violations checker));
        String.concat ","
          (Array.to_list vars
          |> List.concat_map (fun v ->
                 Array.to_list
                   (Node_memory.read (Machine.node m v.Addr.base.pid) v))
          |> List.map string_of_int);
        String.concat ";"
          (List.init n (fun pid ->
               Dsm_clocks.Vector_clock.to_string (Detector.proc_clock d pid)));
      ]
  in
  Digest.to_hex (Digest.string fp)

let reps =
  [
    ("epoch", Config.Epoch_adaptive);
    ("dense", Config.Dense_vector);
    ("sparse", Config.Sparse_vector);
  ]

let rep_of_name name = List.assoc name reps

let planted = [ Machine.Skip_get_dst_lock; Machine.Skip_rmw_write_mark ]

(* ---------- layer 1: pre-refactor goldens ---------- *)

(* Recorded by dev_goldens/record.ml on the pre-refactor tree (commit
   59f2723), n = 4, ops = 12: (rep, planted bugs, seed, digest). *)
let direct_goldens =
  [
    ("epoch", false, 1, "8d9b80261cecbdb32bbe5038aa4967a3");
    ("epoch", false, 2, "8ca91e79026721bed7e0b54e8a51c4d3");
    ("epoch", false, 3, "86f6579b930479c4626968f2053e614d");
    ("epoch", false, 5, "d9280aee5cbda57c896e1a203c2050dc");
    ("epoch", false, 8, "30aa8806bf24824cb2edfd0d2367acc3");
    ("epoch", false, 13, "9ea45eef8b3c84c2a3e3a74a3fa1f701");
    ("epoch", false, 21, "e1a43ee90fe47b00e45a85f1f61fa746");
    ("epoch", false, 42, "4dffe66de1d2725e338dd7cde2febf5b");
    ("epoch", true, 1, "8d9b80261cecbdb32bbe5038aa4967a3");
    ("epoch", true, 2, "6f192e4b0f4531e7db72b3c148d673f3");
    ("epoch", true, 3, "a549668a0ea5b5a18546f09e47ac4145");
    ("epoch", true, 5, "d9280aee5cbda57c896e1a203c2050dc");
    ("epoch", true, 8, "cb0f5d033d28df212b419f4fd329db24");
    ("epoch", true, 13, "9ea45eef8b3c84c2a3e3a74a3fa1f701");
    ("epoch", true, 21, "e1a43ee90fe47b00e45a85f1f61fa746");
    ("epoch", true, 42, "4dffe66de1d2725e338dd7cde2febf5b");
    ("dense", false, 1, "8d9b80261cecbdb32bbe5038aa4967a3");
    ("dense", false, 2, "8ca91e79026721bed7e0b54e8a51c4d3");
    ("dense", false, 3, "86f6579b930479c4626968f2053e614d");
    ("dense", false, 5, "d9280aee5cbda57c896e1a203c2050dc");
    ("dense", false, 8, "30aa8806bf24824cb2edfd0d2367acc3");
    ("dense", false, 13, "9ea45eef8b3c84c2a3e3a74a3fa1f701");
    ("dense", false, 21, "e1a43ee90fe47b00e45a85f1f61fa746");
    ("dense", false, 42, "4dffe66de1d2725e338dd7cde2febf5b");
    ("dense", true, 1, "8d9b80261cecbdb32bbe5038aa4967a3");
    ("dense", true, 2, "6f192e4b0f4531e7db72b3c148d673f3");
    ("dense", true, 3, "a549668a0ea5b5a18546f09e47ac4145");
    ("dense", true, 5, "d9280aee5cbda57c896e1a203c2050dc");
    ("dense", true, 8, "cb0f5d033d28df212b419f4fd329db24");
    ("dense", true, 13, "9ea45eef8b3c84c2a3e3a74a3fa1f701");
    ("dense", true, 21, "e1a43ee90fe47b00e45a85f1f61fa746");
    ("dense", true, 42, "4dffe66de1d2725e338dd7cde2febf5b");
    ("sparse", false, 1, "8d9b80261cecbdb32bbe5038aa4967a3");
    ("sparse", false, 2, "8ca91e79026721bed7e0b54e8a51c4d3");
    ("sparse", false, 3, "86f6579b930479c4626968f2053e614d");
    ("sparse", false, 5, "d9280aee5cbda57c896e1a203c2050dc");
    ("sparse", false, 8, "30aa8806bf24824cb2edfd0d2367acc3");
    ("sparse", false, 13, "9ea45eef8b3c84c2a3e3a74a3fa1f701");
    ("sparse", false, 21, "e1a43ee90fe47b00e45a85f1f61fa746");
    ("sparse", false, 42, "4dffe66de1d2725e338dd7cde2febf5b");
    ("sparse", true, 1, "8d9b80261cecbdb32bbe5038aa4967a3");
    ("sparse", true, 2, "6f192e4b0f4531e7db72b3c148d673f3");
    ("sparse", true, 3, "a549668a0ea5b5a18546f09e47ac4145");
    ("sparse", true, 5, "d9280aee5cbda57c896e1a203c2050dc");
    ("sparse", true, 8, "cb0f5d033d28df212b419f4fd329db24");
    ("sparse", true, 13, "9ea45eef8b3c84c2a3e3a74a3fa1f701");
    ("sparse", true, 21, "e1a43ee90fe47b00e45a85f1f61fa746");
    ("sparse", true, 42, "4dffe66de1d2725e338dd7cde2febf5b");
  ]

let test_direct_goldens () =
  List.iter
    (fun (rname, bug, seed, golden) ->
      let clock_rep = rep_of_name rname in
      let bugs = if bug then planted else [] in
      let label = Printf.sprintf "%s bug=%b seed=%d" rname bug seed in
      Alcotest.(check string)
        (label ^ " (default construction)")
        golden
        (run_once ~clock_rep ~n:4 ~seed ~ops:12 ~bugs ());
      Alcotest.(check string)
        (label ^ " (explicit nic_atomic)")
        golden
        (run_once ~model:Model.Nic_atomic ~clock_rep ~n:4 ~seed ~ops:12
           ~bugs ()))
    direct_goldens

(* Explorer fingerprints recorded on the same pre-refactor tree:
   (scenario, n, planted bug, walk, fingerprint); seed 7, constant
   latency. *)
let explore_goldens =
  [
    ("getput", 2, false, 0, "dce2b15b4348bd19604278c56413588b");
    ("getput", 2, false, 1, "dce2b15b4348bd19604278c56413588b");
    ("getput", 2, false, 2, "dce2b15b4348bd19604278c56413588b");
    ("getput", 2, false, 3, "dce2b15b4348bd19604278c56413588b");
    ("getput", 2, false, 4, "dce2b15b4348bd19604278c56413588b");
    ("getput-checked", 2, false, 0, "5de34e35838ef77dd29e84dc74f53771");
    ("getput-checked", 2, false, 1, "5de34e35838ef77dd29e84dc74f53771");
    ("getput-checked", 2, false, 2, "5de34e35838ef77dd29e84dc74f53771");
    ("getput-checked", 2, false, 3, "7b3ffdc25d751f3170340e641d7c3fc2");
    ("getput-checked", 2, false, 4, "5de34e35838ef77dd29e84dc74f53771");
    ("getput-checked", 2, true, 0, "18e3efae4e528ff5c56264e435e29d6d");
    ("getput-checked", 2, true, 1, "18e3efae4e528ff5c56264e435e29d6d");
    ("getput-checked", 2, true, 2, "18e3efae4e528ff5c56264e435e29d6d");
    ("getput-checked", 2, true, 3, "ab4897354f138be613bd6e1c813d984a");
    ("getput-checked", 2, true, 4, "18e3efae4e528ff5c56264e435e29d6d");
    ("rmwlost-checked", 3, false, 0, "2cb2b8f706bad0022182d75df8bec1ff");
    ("rmwlost-checked", 3, false, 1, "2cb2b8f706bad0022182d75df8bec1ff");
    ("rmwlost-checked", 3, false, 2, "2cb2b8f706bad0022182d75df8bec1ff");
    ("rmwlost-checked", 3, false, 3, "2cb2b8f706bad0022182d75df8bec1ff");
    ("rmwlost-checked", 3, false, 4, "2cb2b8f706bad0022182d75df8bec1ff");
    ("rmwlost-checked", 3, true, 0, "4a1d8fb4553d1c723e0870d9f7be61ea");
    ("rmwlost-checked", 3, true, 1, "3de7622b0c8b108bd8c3c95667980862");
    ("rmwlost-checked", 3, true, 2, "4a1d8fb4553d1c723e0870d9f7be61ea");
    ("rmwlost-checked", 3, true, 3, "4a1d8fb4553d1c723e0870d9f7be61ea");
    ("rmwlost-checked", 3, true, 4, "4a1d8fb4553d1c723e0870d9f7be61ea");
    ("workload:rmw-mix", 3, false, 0, "dd636bd3663fe07b88f86381ffa3a2c5");
    ("workload:rmw-mix", 3, false, 1, "dd636bd3663fe07b88f86381ffa3a2c5");
    ("workload:rmw-mix", 3, false, 2, "dd636bd3663fe07b88f86381ffa3a2c5");
    ("workload:rmw-mix", 3, false, 3, "dd636bd3663fe07b88f86381ffa3a2c5");
    ("workload:rmw-mix", 3, false, 4, "dd636bd3663fe07b88f86381ffa3a2c5");
  ]

let test_explore_goldens () =
  List.iter
    (fun (scenario, n, bug, walk, golden) ->
      let spec =
        {
          Explore.default_spec with
          Explore.scenario;
          n;
          seed = 7;
          latency = Dsm_net.Latency.Constant 1.0;
          bug;
        }
      in
      let r = Explore.run_once spec (Explore.Walk walk) in
      Alcotest.(check string)
        (Printf.sprintf "%s n=%d bug=%b walk=%d" scenario n bug walk)
        golden r.Explore.fingerprint;
      (* and the spec with the model spelled out is the same run *)
      let r' =
        Explore.run_once
          { spec with Explore.model = Model.Nic_atomic }
          (Explore.Walk walk)
      in
      Alcotest.(check string)
        (Printf.sprintf "%s walk=%d (explicit nic_atomic)" scenario walk)
        golden r'.Explore.fingerprint)
    explore_goldens

(* ---------- layer 2: 500+-schedule randomized sweep ---------- *)

(* 3 reps x 2 bug settings x 42 seeds x 2 constructions = 504 schedules,
   each executed twice (default vs. explicit nic_atomic) and held
   bit-identical; the three representations are additionally held
   identical to each other per (bug, seed). *)
let test_sweep_default_vs_explicit () =
  for i = 0 to 41 do
    let seed = 101 + (13 * i) in
    List.iter
      (fun bug ->
        let bugs = if bug then planted else [] in
        let per_rep =
          List.map
            (fun (rname, clock_rep) ->
              let dflt = run_once ~clock_rep ~n:3 ~seed ~ops:8 ~bugs () in
              let expl =
                run_once ~model:Model.Nic_atomic ~clock_rep ~n:3 ~seed
                  ~ops:8 ~bugs ()
              in
              Alcotest.(check string)
                (Printf.sprintf "%s bug=%b seed=%d default=explicit" rname
                   bug seed)
                dflt expl;
              dflt)
            reps
        in
        match per_rep with
        | [ e; dv; sp ] ->
            Alcotest.(check string)
              (Printf.sprintf "bug=%b seed=%d epoch=dense" bug seed)
              e dv;
            Alcotest.(check string)
              (Printf.sprintf "bug=%b seed=%d epoch=sparse" bug seed)
              e sp
        | _ -> assert false)
      [ false; true ]
  done

(* ---------- layer 3: differential properties ---------- *)

let raced_granules built =
  match built.Scenario.detector with
  | None -> []
  | Some d ->
      List.map
        (fun (r : Report.race) ->
          ( r.Report.granule.Addr.base.pid,
            r.Report.granule.Addr.base.offset,
            r.Report.granule.Addr.len ))
        (Report.races (Detector.report d))

(* Union of raced granules over a fixed budget of depth-8 schedules:
   [count] random decision prefixes of length 8 (rest of the schedule
   default), drawn from [case_seed] — the same prefixes for every
   model. *)
let union_races ~spec ~model ~case_seed ~count =
  let ctx = Explore.create_ctx { spec with Explore.model } in
  let g = Prng.create ~seed:case_seed in
  let acc = Hashtbl.create 16 in
  for _ = 1 to count do
    let prefix = List.init 8 (fun _ -> Prng.int g 4) in
    ignore (Explore.run_once_in ctx (Explore.Script prefix));
    match Explore.last_built ctx with
    | None -> ()
    | Some built ->
        List.iter (fun gr -> Hashtbl.replace acc gr ()) (raced_granules built)
  done;
  acc

let diff_scenarios =
  [ ("getput-checked", 2); ("rmwlost-checked", 3); ("workload:rmw-mix", 3) ]

(* The reference model's race set is a subset of every weaker backend's:
   Seq_consistent has every happens-before edge the others have (and
   more), so anything it still flags as concurrent is concurrent under
   fewer edges too. Union-over-schedules because the backends execute
   different schedules from the same decision prefix (non-atomic puts
   add scheduling points). On failure the printer emits replay tokens
   for the failing configuration. *)
let prop_sc_subset =
  let print (idx, case_seed) =
    let scenario, n = List.nth diff_scenarios (idx mod 3) in
    let spec =
      {
        Explore.default_spec with
        Explore.scenario;
        n;
        seed = 1 + case_seed;
        latency = Dsm_net.Latency.Constant 1.0;
      }
    in
    Printf.sprintf "%s seed=%d; sc token: %s" scenario (1 + case_seed)
      (Token.to_string
         (Explore.token_of
            { spec with Explore.model = Model.Seq_consistent }
            []))
  in
  QCheck.Test.make ~count:6 ~name:"seq_consistent races <= weaker models"
    (QCheck.set_print print
       (QCheck.pair (QCheck.int_bound 2) (QCheck.int_bound 999)))
    (fun (idx, case_seed) ->
      let scenario, n = List.nth diff_scenarios (idx mod 3) in
      let spec =
        {
          Explore.default_spec with
          Explore.scenario;
          n;
          seed = 1 + case_seed;
          latency = Dsm_net.Latency.Constant 1.0;
        }
      in
      let count = 6 in
      let sc =
        union_races ~spec ~model:Model.Seq_consistent
          ~case_seed:(case_seed * 31) ~count
      in
      List.for_all
        (fun weaker ->
          let w =
            union_races ~spec ~model:weaker ~case_seed:(case_seed * 31)
              ~count
          in
          Hashtbl.fold (fun gr () ok -> ok && Hashtbl.mem w gr) sc true)
        [ Model.Nic_atomic; Model.Relaxed; Model.Eventual ])

(* ---------- cross-model replay ---------- *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

let test_cross_model_replay () =
  let spec =
    {
      Explore.default_spec with
      Explore.scenario = "rmwlost-checked";
      n = 3;
      latency = Dsm_net.Latency.Constant 1.0;
      model = Model.Relaxed;
    }
  in
  let r = Explore.run_once spec (Explore.Walk 3) in
  let token = Explore.token_of spec r.Explore.decisions in
  let s = Token.to_string token in
  Alcotest.(check bool) "token carries m=relaxed" true
    (contains ~affix:"|m=relaxed" s);
  (match Token.of_string s with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      Alcotest.(check bool) "model round-trips" true
        (t.Token.model = Model.Relaxed));
  (match Explore.replay token with
  | Error msg -> Alcotest.fail msg
  | Ok r' ->
      Alcotest.(check string) "replay under same model is bit-identical"
        r.Explore.fingerprint r'.Explore.fingerprint);
  (* a garbage model field is a clean Error, not an exception *)
  match
    Token.of_string
      "dsm1|s=getput|n=2|seed=1|m=bogus|f=none|r=0|b=0|me=200000|d="
  with
  | Ok _ -> Alcotest.fail "accepted a bogus model"
  | Error _ -> ()

(* pre-model tokens (no m= field) parse and default to nic_atomic *)
let test_old_tokens_default_model () =
  match
    Token.of_string "dsm1|s=getput|n=2|seed=1|f=none|r=0|b=0|me=200000|d=1,2"
  with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      Alcotest.(check bool) "defaults to nic_atomic" true
        (t.Token.model = Model.default);
      Alcotest.(check bool) "m= omitted at default" false
        (contains ~affix:"|m=" (Token.to_string t))

(* detector/machine model agreement is enforced *)
let test_model_mismatch_rejected () =
  let sim = Engine.create ~seed:1 () in
  let m = Machine.create sim ~n:2 ~model:Model.Relaxed () in
  (match Detector.create m () with
  | d ->
      Alcotest.(check bool) "omitted config adopts the machine's model"
        true
        ((Detector.config d).Config.memory_model = Model.Relaxed));
  match
    Detector.create m
      ~config:{ Config.default with Config.memory_model = Model.Eventual }
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a detector/machine model mismatch"

(* ---------- coherence: declared init images ---------- *)

let test_declare_init () =
  (* A read of never-written memory is checked against the declared
     image instead of silently adopted: declaring the true contents
     stays clean, declaring a different image flags the first read. *)
  let check ~declared ~expect_clean =
    let sim = Engine.create ~seed:5 () in
    let m = Machine.create sim ~n:2 () in
    let checker = Coherence.attach m in
    let region = Machine.alloc_public m ~pid:0 ~name:"init" ~len:2 () in
    Coherence.declare_init checker ~node:0
      ~offset:region.Addr.base.offset declared;
    Machine.spawn m ~pid:1 (fun p ->
        let buf = Machine.alloc_private m ~pid:1 ~len:2 () in
        Machine.get p ~src:region ~dst:buf ());
    (match Machine.run m with
    | Engine.Completed -> ()
    | _ -> Alcotest.fail "did not complete");
    Alcotest.(check bool)
      (Printf.sprintf "declared %s -> clean=%b"
         (String.concat ","
            (Array.to_list (Array.map string_of_int declared)))
         expect_clean)
      expect_clean (Coherence.is_clean checker)
  in
  (* fresh public segments are zero: the true image *)
  check ~declared:[| 0; 0 |] ~expect_clean:true;
  check ~declared:[| 7; 0 |] ~expect_clean:false

let () =
  Alcotest.run "model"
    [
      ( "nic-atomic-goldens",
        [
          Alcotest.test_case "direct runs (48 pre-refactor digests)" `Quick
            test_direct_goldens;
          Alcotest.test_case "explorer fingerprints (30 pre-refactor)"
            `Quick test_explore_goldens;
        ] );
      ( "conformance-sweep",
        [
          Alcotest.test_case "504 schedules, default = explicit, all reps"
            `Slow test_sweep_default_vs_explicit;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_sc_subset ] );
      ( "replay",
        [
          Alcotest.test_case "cross-model token round-trip" `Quick
            test_cross_model_replay;
          Alcotest.test_case "pre-model tokens default" `Quick
            test_old_tokens_default_model;
          Alcotest.test_case "machine/detector agreement" `Quick
            test_model_mismatch_rejected;
        ] );
      ( "coherence-init",
        [ Alcotest.test_case "declared init image" `Quick test_declare_init ] );
    ]
