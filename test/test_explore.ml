(* The schedule-exploration and fault-injection harness: replay tokens,
   the planted-bug acceptance path, invariant checking, and the
   differential vector-clock vs. lockset comparison across explored
   schedules. *)

open Dsm_sim
module Explore = Dsm_explore.Explore
module Token = Dsm_explore.Token
module Chooser = Dsm_explore.Chooser
module Machine = Dsm_rdma.Machine
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Env = Dsm_pgas.Env
module Collectives = Dsm_pgas.Collectives
module Fault = Dsm_net.Fault

(* ---------- tokens ---------- *)

let test_token_roundtrip () =
  let t =
    {
      Token.scenario = "getput";
      n = 3;
      seed = 42;
      latency = Dsm_net.Latency.Constant 1.0;
      clock_wire = Config.Sparse_wire;
      model = Dsm_rdma.Model.Relaxed;
      faults = Fault.of_string "drop=0.2,dup=0.1,0>1:reorder=0.5";
      reliable = true;
      bug = true;
      max_events = 50_000;
      decisions = [ 1; 0; 2; 0; 3 ];
    }
  in
  match Token.of_string (Token.to_string t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
      Alcotest.(check string) "token" (Token.to_string t) (Token.to_string t')

let test_token_rejects_garbage () =
  (match Token.of_string "nonsense" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  (match Token.of_string "dsm1|s=getput|n=x" with
  | Ok _ -> Alcotest.fail "accepted bad integer"
  | Error _ -> ());
  match Token.of_string "dsm1|weird" with
  | Ok _ -> Alcotest.fail "accepted field without '='"
  | Error _ -> ()

let test_trim_trailing_zeros () =
  Alcotest.(check (list int))
    "trim" [ 1; 0; 2 ]
    (Token.trim_trailing_zeros [ 1; 0; 2; 0; 0 ]);
  Alcotest.(check (list int)) "all zeros" [] (Token.trim_trailing_zeros [ 0; 0 ])

(* ---------- chooser ---------- *)

let test_chooser_scripted_clamps () =
  let c = Chooser.scripted [ 5; -1; 1 ] in
  (* ready counts 3, 4, 2 — and one decision past the script's end *)
  Alcotest.(check int) "clamped high" 2 (Chooser.fn c 3);
  Alcotest.(check int) "clamped low" 0 (Chooser.fn c 4);
  Alcotest.(check int) "in range" 1 (Chooser.fn c 2);
  Alcotest.(check int) "past end" 0 (Chooser.fn c 7);
  Alcotest.(check (list int)) "recorded" [ 2; 0; 1; 0 ] (Chooser.decisions c);
  Alcotest.(check int) "points" 4 (Chooser.choice_points c)

(* ---------- invariants on clean scenarios ---------- *)

let test_getput_clean_schedules () =
  let spec = { Explore.default_spec with Explore.seed = 3 } in
  let stats = Explore.explore_random spec ~runs:25 in
  Alcotest.(check int) "runs" 25 stats.Explore.runs;
  Alcotest.(check int) "violations" 0 stats.Explore.violated

let test_workloads_clean_schedules () =
  List.iter
    (fun scenario ->
      let spec =
        { Explore.default_spec with Explore.scenario; n = 3; seed = 5 }
      in
      let stats = Explore.explore_random spec ~runs:8 in
      Alcotest.(check int) (scenario ^ " violations") 0 stats.Explore.violated)
    [
      "workload:random";
      "workload:master-worker-racy";
      "workload:pipeline";
      "workload:locked-counter";
    ]

let test_exhaustive_clean () =
  let spec = { Explore.default_spec with Explore.seed = 2 } in
  let stats = Explore.explore_exhaustive spec ~depth:6 ~max_runs:50 in
  Alcotest.(check int) "violations" 0 stats.Explore.violated;
  Alcotest.(check bool) "explored something" true (stats.Explore.runs >= 1)

(* ---------- determinism ---------- *)

let test_walk_replay_identical () =
  List.iter
    (fun scenario ->
      let spec =
        { Explore.default_spec with Explore.scenario; n = 3; seed = 9 }
      in
      let r = Explore.run_once spec (Explore.Walk 4) in
      let r' = Explore.run_once spec (Explore.Script r.Explore.decisions) in
      Alcotest.(check string)
        (scenario ^ " fingerprint") r.Explore.fingerprint
        r'.Explore.fingerprint)
    [ "getput"; "workload:random"; "workload:pipeline" ]

(* ---------- fault injection and the reliable transport ---------- *)

let lossy = Fault.of_string "drop=0.3,dup=0.15,reorder=0.2"

let test_reliable_transport_survives_faults () =
  let spec =
    {
      Explore.default_spec with
      Explore.seed = 13;
      faults = lossy;
      reliable = true;
    }
  in
  let r = Explore.run_once spec (Explore.Script []) in
  Alcotest.(check bool) "completed" true (r.Explore.outcome = Explore.Completed);
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (fun v -> v.Explore.invariant ^ ": " ^ v.Explore.detail)
       r.Explore.violations);
  Alcotest.(check bool) "retransmitted" true (r.Explore.retransmits > 0)

let test_unreliable_faults_degrade_without_wedging () =
  (* Without the transport, heavy loss may block the protocol — but each
     run must still terminate cleanly and never crash the engine. *)
  let spec =
    { Explore.default_spec with Explore.seed = 17; faults = Fault.of_string "drop=0.6" }
  in
  for i = 0 to 9 do
    let r = Explore.run_once spec (Explore.Walk i) in
    (match r.Explore.outcome with
    | Explore.Completed | Explore.Blocked _ -> ()
    | o ->
        Alcotest.failf "run %d ended %s" i (Explore.outcome_to_string o));
    Alcotest.(check (list string)) "no violations" []
      (List.map (fun v -> v.Explore.invariant) r.Explore.violations)
  done

let test_fault_plan_changes_runs () =
  let base = { Explore.default_spec with Explore.seed = 21 } in
  let clean = Explore.run_once base (Explore.Script []) in
  let faulty =
    Explore.run_once
      { base with Explore.faults = lossy; reliable = true }
      (Explore.Script [])
  in
  Alcotest.(check bool) "distinct fingerprints" true
    (clean.Explore.fingerprint <> faulty.Explore.fingerprint)

(* ---------- the planted-bug acceptance path ---------- *)

(* ISSUE 2 acceptance: a seeded, fault-injected run of a scenario with a
   known protocol bug planted behind a config flag must violate an
   invariant; the minimized replay token must reproduce the violation
   with a bit-identical fingerprint on two consecutive replays. *)
let test_planted_bug_found_minimized_replayed () =
  let spec =
    {
      Explore.default_spec with
      Explore.seed = 7;
      faults = Fault.of_string "drop=0.2,dup=0.1";
      reliable = true;
      bug = true;
    }
  in
  let stats = Explore.explore_random spec ~runs:50 in
  match stats.Explore.first with
  | None -> Alcotest.fail "planted bug not found within 50 schedules"
  | Some (_, r) ->
      Alcotest.(check bool) "monitor fired" true
        (List.exists
           (fun v -> v.Explore.invariant = "get-window-atomicity")
           r.Explore.violations);
      let minimized = Explore.minimize spec r.Explore.decisions in
      Alcotest.(check bool) "minimized no longer than original" true
        (List.length minimized
        <= List.length (Token.trim_trailing_zeros r.Explore.decisions));
      let token = Explore.token_of spec minimized in
      (* the token survives its own wire format *)
      let token =
        match Token.of_string (Token.to_string token) with
        | Ok t -> t
        | Error msg -> Alcotest.fail msg
      in
      let replay_exn token =
        match Explore.replay token with
        | Ok r -> r
        | Error msg -> Alcotest.fail ("replay rejected: " ^ msg)
      in
      let r1 = replay_exn token in
      let r2 = replay_exn token in
      Alcotest.(check bool) "replay violates" true
        (r1.Explore.violations <> []);
      Alcotest.(check string) "bit-identical fingerprints"
        r1.Explore.fingerprint r2.Explore.fingerprint

let test_no_bug_no_monitor_violation () =
  (* Same spec without the planted bug: the monitor must stay silent —
     the violation really is the bug, not the harness. *)
  let spec =
    {
      Explore.default_spec with
      Explore.seed = 7;
      faults = Fault.of_string "drop=0.2,dup=0.1";
      reliable = true;
    }
  in
  let stats = Explore.explore_random spec ~runs:25 in
  Alcotest.(check int) "violations" 0 stats.Explore.violated

let test_exhaustive_finds_planted_bug () =
  let spec = { Explore.default_spec with Explore.seed = 1; bug = true } in
  let stats = Explore.explore_exhaustive spec ~depth:4 ~max_runs:100 in
  Alcotest.(check bool) "found" true (stats.Explore.first <> None)

(* ---------- differential: vector clocks vs. lockset ---------- *)

type which_workload = Random_w | Master_clean | Master_racy | Pipeline_w

let workload_name = function
  | Random_w -> "random"
  | Master_clean -> "master-worker"
  | Master_racy -> "master-worker-racy"
  | Pipeline_w -> "pipeline"

let setup_workload which env collectives ~seed =
  match which with
  | Random_w ->
      Dsm_workload.Random_access.setup env ~collectives
        {
          Dsm_workload.Random_access.default with
          ops_per_proc = 5;
          think_mean = 1.0;
          seed;
        }
  | Master_clean | Master_racy ->
      Dsm_workload.Master_worker.setup env ~collectives
        {
          Dsm_workload.Master_worker.default with
          tasks_per_worker = 2;
          racy = which = Master_racy;
          seed;
        }
  | Pipeline_w ->
      Dsm_workload.Pipeline.setup env
        { Dsm_workload.Pipeline.default with batches = 2; seed }

(* One explored schedule of one workload, with tracing on: every READ the
   vector-clock detector flags must be corroborated either by ground
   truth (an unordered conflicting pair on that granule — which always
   involves a write) or by lockset. A read flag with neither would be a
   read/read false positive the W-clock refinement (§4.4) exists to
   prevent. *)
let differential_one which ~schedule =
  let sim = Engine.create ~seed:11 () in
  let machine = Machine.create sim ~n:3 () in
  let config =
    {
      Config.default with
      Config.record_trace = true;
      granularity = Config.Word;
    }
  in
  let detector = Detector.create machine ~config () in
  let env = Env.checked detector in
  let collectives = Collectives.create env in
  setup_workload which env collectives ~seed:23;
  let chooser = Chooser.random (Prng.create ~seed:((schedule * 2654435761) + 97)) in
  Engine.set_chooser sim (Some (Chooser.fn chooser));
  (match Machine.run machine with
  | Engine.Completed -> ()
  | o ->
      Alcotest.failf "%s schedule %d did not complete: %s"
        (workload_name which) schedule
        (match o with
        | Engine.Blocked k -> Printf.sprintf "blocked(%d)" k
        | _ -> "?"));
  let trace =
    match Detector.trace detector with
    | Some t -> t
    | None -> Alcotest.fail "trace recording was on"
  in
  let ground_truth = Dsm_trace.Trace.races trace in
  let lockset_words = Dsm_baselines.Lockset.racy_words trace in
  let granule_has_ground_truth (g : Dsm_memory.Addr.region) =
    List.exists
      (fun { Dsm_trace.Trace.first; second } ->
        Dsm_memory.Addr.overlap g first.Dsm_trace.Event.target
        || Dsm_memory.Addr.overlap g second.Dsm_trace.Event.target)
      ground_truth
  in
  let granule_in_lockset (g : Dsm_memory.Addr.region) =
    let node = g.Dsm_memory.Addr.base.pid in
    let lo = g.Dsm_memory.Addr.base.offset in
    let hi = lo + g.Dsm_memory.Addr.len in
    List.exists
      (fun (n, w) -> n = node && w >= lo && w < hi)
      lockset_words
  in
  List.iter
    (fun (r : Report.race) ->
      if r.Report.kind = Dsm_trace.Event.Read then
        let g = r.Report.granule in
        if not (granule_has_ground_truth g || granule_in_lockset g) then
          Alcotest.failf
            "%s schedule %d: read flagged at %s with no ground-truth race \
             and no lockset verdict"
            (workload_name which) schedule
            (Format.asprintf "%a" Dsm_memory.Addr.pp_region g))
    (Report.races (Detector.report detector))

let test_differential_50_schedules () =
  (* 50 explored schedules spread over the workload programs (the ISSUE 2
     differential satellite): 14+12+12+12. *)
  List.iter
    (fun (which, schedules) ->
      for schedule = 0 to schedules - 1 do
        differential_one which ~schedule
      done)
    [ (Random_w, 14); (Master_clean, 12); (Master_racy, 12); (Pipeline_w, 12) ]

(* ---------- reusable arenas ---------- *)

(* A run in a reused ctx must be bit-identical to one in a fresh engine +
   machine, including after runs that ended early (Blocked, Event_limit)
   and could leave half-finished protocol state behind for the reset to
   clean up. *)
let test_ctx_reuse_bit_identical () =
  List.iter
    (fun (label, spec) ->
      let ctx = Explore.create_ctx spec in
      for i = 0 to 7 do
        let reused = Explore.run_once_in ctx (Explore.Walk i) in
        let fresh = Explore.run_once spec (Explore.Walk i) in
        Alcotest.(check string)
          (Printf.sprintf "%s walk %d outcome" label i)
          (Explore.outcome_to_string fresh.Explore.outcome)
          (Explore.outcome_to_string reused.Explore.outcome);
        Alcotest.(check string)
          (Printf.sprintf "%s walk %d fingerprint" label i)
          fresh.Explore.fingerprint reused.Explore.fingerprint
      done)
    [
      ("clean", { Explore.default_spec with Explore.seed = 9 });
      ( "lossy, may block",
        {
          Explore.default_spec with
          Explore.seed = 17;
          faults = Fault.of_string "drop=0.6";
        } );
      ( "event-limit",
        { Explore.default_spec with Explore.seed = 5; max_events = 300 } );
    ]

(* The walk loop reuses the arena's decision buffers: after a warm-up
   batch their capacity must stop growing, and a batch of runs must not
   allocate more than the identical batch before it (runs are
   deterministic, so any growth is a per-run leak). *)
let test_no_per_run_leak () =
  let spec = { Explore.default_spec with Explore.seed = 3 } in
  let ctx = Explore.create_ctx spec in
  let batch () =
    for i = 0 to 19 do
      ignore (Explore.run_once_in ctx (Explore.Walk (i mod 5)))
    done
  in
  batch ();
  let cap = Explore.decision_capacity ctx in
  let a0 = Gc.allocated_bytes () in
  batch ();
  let a1 = Gc.allocated_bytes () in
  batch ();
  let a2 = Gc.allocated_bytes () in
  Alcotest.(check int) "decision buffers stabilized" cap
    (Explore.decision_capacity ctx);
  let b1 = a1 -. a0 and b2 = a2 -. a1 in
  Alcotest.(check bool)
    (Printf.sprintf "no per-batch allocation growth (%.0f then %.0f bytes)" b1
       b2)
    true
    (b2 <= b1 +. 4096.)

(* ---------- determinism under parallelism ---------- *)

module Parallel = Dsm_explore.Parallel

let mode_str = function
  | Explore.Walk i -> Printf.sprintf "walk %d" i
  | Explore.Script ds ->
      "script " ^ String.concat "," (List.map string_of_int ds)

let check_stats_equal label (a : Explore.stats) (b : Explore.stats) =
  Alcotest.(check int) (label ^ ": runs") a.Explore.runs b.Explore.runs;
  Alcotest.(check int)
    (label ^ ": violated")
    a.Explore.violated b.Explore.violated;
  match (a.Explore.first, b.Explore.first) with
  | None, None -> ()
  | Some (m, r), Some (m', r') ->
      Alcotest.(check string) (label ^ ": first mode") (mode_str m)
        (mode_str m');
      Alcotest.(check (list int))
        (label ^ ": first decisions")
        r.Explore.decisions r'.Explore.decisions;
      Alcotest.(check string)
        (label ^ ": first fingerprint")
        r.Explore.fingerprint r'.Explore.fingerprint
  | Some _, None -> Alcotest.fail (label ^ ": parallel lost the violation")
  | None, Some _ -> Alcotest.fail (label ^ ": parallel invented a violation")

let minimized_token spec (stats : Explore.stats) =
  match stats.Explore.first with
  | None -> Alcotest.fail "expected a violation to minimize"
  | Some (_, r) ->
      Token.to_string
        (Explore.token_of spec (Explore.minimize spec r.Explore.decisions))

(* Under a reliable transport at drop=0.65, seed 1's walk 15 is the
   first whose retransmission schedule exhausts a frame's retry budget:
   a violation deep in the batch, so jobs claiming indices out of order
   must still agree on the minimum. *)
let late_violation_spec =
  {
    Explore.default_spec with
    Explore.seed = 1;
    faults = Fault.of_string "drop=0.65";
    reliable = true;
  }

let planted_bug_spec =
  {
    Explore.default_spec with
    Explore.seed = 7;
    faults = Fault.of_string "drop=0.2,dup=0.1";
    reliable = true;
    bug = true;
  }

let test_parallel_walks_identical () =
  List.iter
    (fun (label, spec, runs) ->
      let seq = Explore.explore_random spec ~runs in
      let tok =
        if seq.Explore.violated > 0 then Some (minimized_token spec seq)
        else None
      in
      List.iter
        (fun jobs ->
          let par = Parallel.explore_random ~jobs spec ~runs in
          check_stats_equal (Printf.sprintf "%s, jobs %d" label jobs) seq par;
          match tok with
          | Some t ->
              Alcotest.(check string)
                (Printf.sprintf "%s, jobs %d: minimized token" label jobs)
                t
                (minimized_token spec par)
          | None -> ())
        [ 1; 2; 4 ])
    [
      ("clean", { Explore.default_spec with Explore.seed = 3 }, 25);
      ("planted bug", planted_bug_spec, 50);
      ("late violation", late_violation_spec, 25);
    ]

let test_parallel_walks_full_batch () =
  (* stop_on_first off: every index executes; the violation count and the
     minimum violating index must agree with the sequential sweep. *)
  List.iter
    (fun jobs ->
      let seq =
        Explore.explore_random ~stop_on_first:false late_violation_spec
          ~runs:25
      in
      let par =
        Parallel.explore_random ~stop_on_first:false ~jobs late_violation_spec
          ~runs:25
      in
      Alcotest.(check bool) "found violations" true (seq.Explore.violated > 0);
      check_stats_equal (Printf.sprintf "full batch, jobs %d" jobs) seq par)
    [ 2; 4 ]

let test_parallel_exhaustive_identical () =
  List.iter
    (fun (label, spec, depth, max_runs) ->
      let seq = Explore.explore_exhaustive spec ~depth ~max_runs in
      List.iter
        (fun jobs ->
          let par = Parallel.explore_exhaustive ~jobs spec ~depth ~max_runs in
          check_stats_equal (Printf.sprintf "%s, jobs %d" label jobs) seq par)
        [ 1; 2; 4 ])
    [
      ("clean", { Explore.default_spec with Explore.seed = 2 }, 6, 50);
      ( "planted bug",
        { Explore.default_spec with Explore.seed = 1; bug = true },
        4,
        100 );
      ("deep violation", late_violation_spec, 6, 100);
      ( "cap-limited",
        {
          Explore.default_spec with
          Explore.seed = 4;
          faults = Fault.of_string "drop=0.64";
          reliable = true;
        },
        10,
        120 );
    ]

(* ---------- chunked claims and persistent pools ---------- *)

let test_parallel_chunk_identity () =
  (* the jobs x chunk matrix: every combination must report the very
     same stats, fingerprints and minimized token as the sequential
     sweep — chunking changes only how walk indices are claimed *)
  List.iter
    (fun (label, spec, runs) ->
      let seq = Explore.explore_random spec ~runs in
      let tok =
        if seq.Explore.violated > 0 then Some (minimized_token spec seq)
        else None
      in
      List.iter
        (fun jobs ->
          List.iter
            (fun chunk ->
              let par = Parallel.explore_random ~jobs ~chunk spec ~runs in
              let l = Printf.sprintf "%s, jobs %d, chunk %d" label jobs chunk in
              check_stats_equal l seq par;
              match tok with
              | Some t ->
                  Alcotest.(check string)
                    (l ^ ": minimized token")
                    t (minimized_token spec par)
              | None -> ())
            [ 1; 64; 256 ])
        [ 1; 2; 4 ])
    [
      ("clean", { Explore.default_spec with Explore.seed = 3 }, 25);
      ("planted bug", planted_bug_spec, 50);
    ]

let test_parallel_chunk_rejected () =
  List.iter
    (fun chunk ->
      match
        Parallel.explore_random ~jobs:2 ~chunk Explore.default_spec ~runs:5
      with
      | _ -> Alcotest.fail "chunk < 1 accepted"
      | exception Invalid_argument _ -> ())
    [ 0; -3 ]

let test_pool_reused_across_batches () =
  (* one pool, several batches: arenas stay hot between jobs yet every
     batch matches a fresh sequential sweep bit for bit — including a
     batch of a different spec, which must rebuild the worker arenas *)
  let clean = { Explore.default_spec with Explore.seed = 3 } in
  let seq_clean = Explore.explore_random clean ~runs:25 in
  let seq_bug = Explore.explore_random planted_bug_spec ~runs:30 in
  let seq_dfs = Explore.explore_exhaustive clean ~depth:6 ~max_runs:50 in
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check bool) "pool size >= 1" true (Parallel.Pool.size pool >= 1);
      let p1 = Parallel.explore_random ~pool ~jobs:4 clean ~runs:25 in
      check_stats_equal "pool, batch 1" seq_clean p1;
      let p2 = Parallel.explore_random ~pool ~jobs:4 ~chunk:1 clean ~runs:25 in
      check_stats_equal "pool, batch 2 (chunk 1, hot arena)" seq_clean p2;
      let p3 =
        Parallel.explore_random ~pool ~jobs:4 planted_bug_spec ~runs:30
      in
      check_stats_equal "pool, batch 3 (spec change)" seq_bug p3;
      let p4 =
        Parallel.explore_exhaustive ~pool ~jobs:4 clean ~depth:6 ~max_runs:50
      in
      check_stats_equal "pool, batch 4 (exhaustive)" seq_dfs p4)

(* ---------- sleep-set DPOR ---------- *)

module Dpor = Dsm_explore.Dpor

(* Fault-free specs whose same-instant ties make the schedule tree
   genuinely branch (the planted-bug row is the Skip_get_dst_lock
   protocol bug). Depths and caps chosen so both searches finish the
   bounded tree — the canon-set equality below presumes neither was
   truncated by [max_runs]. *)
let dpor_specs =
  [
    ( "getput, tied deliveries",
      {
        Explore.default_spec with
        Explore.latency = Dsm_net.Latency.Constant 1.0;
      },
      6,
      false );
    ( "getput, planted Skip_get_dst_lock",
      {
        Explore.default_spec with
        Explore.latency = Dsm_net.Latency.Constant 1.0;
        bug = true;
      },
      6,
      true );
    ( "workload:scale",
      { Explore.default_spec with Explore.scenario = "workload:scale"; n = 4 },
      10,
      false );
    ( "workload:master-worker-racy",
      {
        Explore.default_spec with
        Explore.scenario = "workload:master-worker-racy";
        n = 3;
      },
      10,
      false );
    (* the RMW workloads: CAS/fetch_add/accumulate races must survive
       sleep-set pruning — every pruned schedule keeps an explored
       representative with the same race set *)
    ( "workload:histogram-racy",
      {
        Explore.default_spec with
        Explore.scenario = "workload:histogram-racy";
        n = 4;
      },
      12,
      false );
    ( "workload:deque-racy",
      {
        Explore.default_spec with
        Explore.scenario = "workload:deque-racy";
        n = 3;
      },
      12,
      false );
    ( "workload:allreduce-racy",
      {
        Explore.default_spec with
        Explore.scenario = "workload:allreduce-racy";
        n = 3;
        latency = Dsm_net.Latency.Constant 1.0;
      },
      8,
      false );
  ]

let test_dpor_prunes_and_preserves_findings () =
  List.iter
    (fun (label, spec, depth, expect_violation) ->
      let full =
        Dpor.explore ~dpor:false ~stop_on_first:false ~max_runs:2000 spec
          ~depth
      in
      let red =
        Dpor.explore ~stop_on_first:false ~max_runs:2000 spec ~depth
      in
      Alcotest.(check bool)
        (label ^ ": full search explored the whole tree")
        true
        (full.Dpor.runs < 2000);
      Alcotest.(check bool)
        (label ^ ": DPOR explored strictly fewer runs")
        true
        (red.Dpor.runs < full.Dpor.runs);
      Alcotest.(check bool)
        (label ^ ": DPOR pruned something")
        true (red.Dpor.pruned > 0);
      Alcotest.(check int)
        (label ^ ": full search pruned nothing")
        0 full.Dpor.pruned;
      Alcotest.(check (list string))
        (label ^ ": canonical fingerprint sets equal")
        full.Dpor.canons red.Dpor.canons;
      Alcotest.(check bool)
        (label ^ ": violation presence preserved")
        (full.Dpor.violated > 0)
        (red.Dpor.violated > 0);
      if expect_violation then
        Alcotest.(check bool)
          (label ^ ": planted bug still found under pruning")
          true
          (red.Dpor.violated > 0))
    dpor_specs

let test_dpor_matches_exhaustive_when_off () =
  (* dpor:false must be the bounded-exhaustive DFS, run for run *)
  let spec =
    {
      Explore.default_spec with
      Explore.latency = Dsm_net.Latency.Constant 1.0;
    }
  in
  let dfs = Explore.explore_exhaustive spec ~depth:6 ~max_runs:2000 in
  let off = Dpor.explore ~dpor:false ~max_runs:2000 spec ~depth:6 in
  Alcotest.(check int) "runs" dfs.Explore.runs off.Dpor.runs;
  Alcotest.(check int) "violated" dfs.Explore.violated off.Dpor.violated

let test_dpor_pruned_replay_covered () =
  (* the soundness property, checked the hard way: replay every pruned
     schedule and find its canonical fingerprint among the runs the
     reduced search did execute *)
  List.iter
    (fun (label, spec, depth, _) ->
      let red =
        Dpor.explore ~stop_on_first:false ~max_runs:2000 spec ~depth
      in
      Alcotest.(check int)
        (label ^ ": one ledger entry per pruned schedule")
        red.Dpor.pruned
        (List.length red.Dpor.pruned_prefixes);
      let ctx = Explore.create_ctx spec in
      List.iter
        (fun prefix ->
          let r = Explore.exec_checked ctx (Explore.Script prefix) in
          let canon = Explore.raw_canon r in
          Alcotest.(check bool)
            (Printf.sprintf "%s: pruned %s has an explored representative"
               label
               (String.concat "," (List.map string_of_int prefix)))
            true
            (List.mem canon red.Dpor.canons))
        red.Dpor.pruned_prefixes)
    dpor_specs

let test_dpor_disabled_under_faults () =
  (* fault draws share a PRNG stream, so commutation is unsound there:
     the search must fall back to the full DFS silently *)
  let spec =
    {
      Explore.default_spec with
      Explore.seed = 4;
      faults = Fault.of_string "drop=0.3";
      reliable = true;
    }
  in
  let full = Dpor.explore ~dpor:false ~stop_on_first:false ~max_runs:200 spec ~depth:4 in
  let red = Dpor.explore ~stop_on_first:false ~max_runs:200 spec ~depth:4 in
  Alcotest.(check int) "same runs" full.Dpor.runs red.Dpor.runs;
  Alcotest.(check int) "nothing pruned" 0 red.Dpor.pruned;
  Alcotest.(check (list string)) "same canons" full.Dpor.canons red.Dpor.canons

(* ---------- replay rejects a mismatched token ---------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_replay_rejects_undersized_token () =
  (* A hand-edited token declaring fewer processes than the scenario
     needs must come back as a clean [Error], not an exception. *)
  match
    Token.of_string "dsm1|s=getput|n=1|seed=7|f=none|r=0|b=1|me=200000|d=1,2"
  with
  | Error msg -> Alcotest.fail ("token should parse: " ^ msg)
  | Ok t -> (
      match Explore.replay t with
      | Ok _ -> Alcotest.fail "replay accepted an n=1 getput token"
      | Error msg ->
          Alcotest.(check bool)
            ("error names the minimum: " ^ msg)
            true
            (contains msg "at least 2"))

(* ---------- registration ---------- *)

let () =
  Alcotest.run "explore"
    [
      ( "token",
        [
          Alcotest.test_case "roundtrip" `Quick test_token_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_token_rejects_garbage;
          Alcotest.test_case "trim zeros" `Quick test_trim_trailing_zeros;
        ] );
      ( "chooser",
        [ Alcotest.test_case "scripted clamps" `Quick test_chooser_scripted_clamps ] );
      ( "invariants",
        [
          Alcotest.test_case "getput clean" `Quick test_getput_clean_schedules;
          Alcotest.test_case "workloads clean" `Slow test_workloads_clean_schedules;
          Alcotest.test_case "exhaustive clean" `Quick test_exhaustive_clean;
          Alcotest.test_case "walk = replay" `Quick test_walk_replay_identical;
        ] );
      ( "faults",
        [
          Alcotest.test_case "reliable survives" `Quick
            test_reliable_transport_survives_faults;
          Alcotest.test_case "unreliable degrades" `Quick
            test_unreliable_faults_degrade_without_wedging;
          Alcotest.test_case "plan changes run" `Quick test_fault_plan_changes_runs;
        ] );
      ( "planted-bug",
        [
          Alcotest.test_case "found, minimized, replayed" `Quick
            test_planted_bug_found_minimized_replayed;
          Alcotest.test_case "absent without flag" `Quick
            test_no_bug_no_monitor_violation;
          Alcotest.test_case "exhaustive finds it" `Quick
            test_exhaustive_finds_planted_bug;
        ] );
      ( "arena",
        [
          Alcotest.test_case "ctx reuse bit-identical" `Quick
            test_ctx_reuse_bit_identical;
          Alcotest.test_case "no per-run leak" `Quick test_no_per_run_leak;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "walks identical across jobs" `Quick
            test_parallel_walks_identical;
          Alcotest.test_case "full batch identical across jobs" `Quick
            test_parallel_walks_full_batch;
          Alcotest.test_case "exhaustive identical across jobs" `Quick
            test_parallel_exhaustive_identical;
          Alcotest.test_case "jobs x chunk identity matrix" `Slow
            test_parallel_chunk_identity;
          Alcotest.test_case "chunk < 1 rejected" `Quick
            test_parallel_chunk_rejected;
          Alcotest.test_case "pool reused across batches" `Quick
            test_pool_reused_across_batches;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "prunes, findings preserved" `Quick
            test_dpor_prunes_and_preserves_findings;
          Alcotest.test_case "off = exhaustive DFS" `Quick
            test_dpor_matches_exhaustive_when_off;
          Alcotest.test_case "every pruned schedule covered" `Slow
            test_dpor_pruned_replay_covered;
          Alcotest.test_case "disabled under faults" `Quick
            test_dpor_disabled_under_faults;
        ] );
      ( "replay-mismatch",
        [
          Alcotest.test_case "rejects undersized token" `Quick
            test_replay_rejects_undersized_token;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clocks vs lockset, 50 schedules" `Slow
            test_differential_50_schedules;
        ] );
    ]
