(* The schedule-exploration and fault-injection harness: replay tokens,
   the planted-bug acceptance path, invariant checking, and the
   differential vector-clock vs. lockset comparison across explored
   schedules. *)

open Dsm_sim
module Explore = Dsm_explore.Explore
module Token = Dsm_explore.Token
module Chooser = Dsm_explore.Chooser
module Machine = Dsm_rdma.Machine
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Env = Dsm_pgas.Env
module Collectives = Dsm_pgas.Collectives
module Fault = Dsm_net.Fault

(* ---------- tokens ---------- *)

let test_token_roundtrip () =
  let t =
    {
      Token.scenario = "getput";
      n = 3;
      seed = 42;
      faults = Fault.of_string "drop=0.2,dup=0.1,0>1:reorder=0.5";
      reliable = true;
      bug = true;
      max_events = 50_000;
      decisions = [ 1; 0; 2; 0; 3 ];
    }
  in
  match Token.of_string (Token.to_string t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
      Alcotest.(check string) "token" (Token.to_string t) (Token.to_string t')

let test_token_rejects_garbage () =
  (match Token.of_string "nonsense" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  (match Token.of_string "dsm1|s=getput|n=x" with
  | Ok _ -> Alcotest.fail "accepted bad integer"
  | Error _ -> ());
  match Token.of_string "dsm1|weird" with
  | Ok _ -> Alcotest.fail "accepted field without '='"
  | Error _ -> ()

let test_trim_trailing_zeros () =
  Alcotest.(check (list int))
    "trim" [ 1; 0; 2 ]
    (Token.trim_trailing_zeros [ 1; 0; 2; 0; 0 ]);
  Alcotest.(check (list int)) "all zeros" [] (Token.trim_trailing_zeros [ 0; 0 ])

(* ---------- chooser ---------- *)

let test_chooser_scripted_clamps () =
  let c = Chooser.scripted [ 5; -1; 1 ] in
  (* ready counts 3, 4, 2 — and one decision past the script's end *)
  Alcotest.(check int) "clamped high" 2 (Chooser.fn c 3);
  Alcotest.(check int) "clamped low" 0 (Chooser.fn c 4);
  Alcotest.(check int) "in range" 1 (Chooser.fn c 2);
  Alcotest.(check int) "past end" 0 (Chooser.fn c 7);
  Alcotest.(check (list int)) "recorded" [ 2; 0; 1; 0 ] (Chooser.decisions c);
  Alcotest.(check int) "points" 4 (Chooser.choice_points c)

(* ---------- invariants on clean scenarios ---------- *)

let test_getput_clean_schedules () =
  let spec = { Explore.default_spec with Explore.seed = 3 } in
  let stats = Explore.explore_random spec ~runs:25 in
  Alcotest.(check int) "runs" 25 stats.Explore.runs;
  Alcotest.(check int) "violations" 0 stats.Explore.violated

let test_workloads_clean_schedules () =
  List.iter
    (fun scenario ->
      let spec =
        { Explore.default_spec with Explore.scenario; n = 3; seed = 5 }
      in
      let stats = Explore.explore_random spec ~runs:8 in
      Alcotest.(check int) (scenario ^ " violations") 0 stats.Explore.violated)
    [
      "workload:random";
      "workload:master-worker-racy";
      "workload:pipeline";
      "workload:locked-counter";
    ]

let test_exhaustive_clean () =
  let spec = { Explore.default_spec with Explore.seed = 2 } in
  let stats = Explore.explore_exhaustive spec ~depth:6 ~max_runs:50 in
  Alcotest.(check int) "violations" 0 stats.Explore.violated;
  Alcotest.(check bool) "explored something" true (stats.Explore.runs >= 1)

(* ---------- determinism ---------- *)

let test_walk_replay_identical () =
  List.iter
    (fun scenario ->
      let spec =
        { Explore.default_spec with Explore.scenario; n = 3; seed = 9 }
      in
      let r = Explore.run_once spec (Explore.Walk 4) in
      let r' = Explore.run_once spec (Explore.Script r.Explore.decisions) in
      Alcotest.(check string)
        (scenario ^ " fingerprint") r.Explore.fingerprint
        r'.Explore.fingerprint)
    [ "getput"; "workload:random"; "workload:pipeline" ]

(* ---------- fault injection and the reliable transport ---------- *)

let lossy = Fault.of_string "drop=0.3,dup=0.15,reorder=0.2"

let test_reliable_transport_survives_faults () =
  let spec =
    {
      Explore.default_spec with
      Explore.seed = 13;
      faults = lossy;
      reliable = true;
    }
  in
  let r = Explore.run_once spec (Explore.Script []) in
  Alcotest.(check bool) "completed" true (r.Explore.outcome = Explore.Completed);
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (fun v -> v.Explore.invariant ^ ": " ^ v.Explore.detail)
       r.Explore.violations);
  Alcotest.(check bool) "retransmitted" true (r.Explore.retransmits > 0)

let test_unreliable_faults_degrade_without_wedging () =
  (* Without the transport, heavy loss may block the protocol — but each
     run must still terminate cleanly and never crash the engine. *)
  let spec =
    { Explore.default_spec with Explore.seed = 17; faults = Fault.of_string "drop=0.6" }
  in
  for i = 0 to 9 do
    let r = Explore.run_once spec (Explore.Walk i) in
    (match r.Explore.outcome with
    | Explore.Completed | Explore.Blocked _ -> ()
    | o ->
        Alcotest.failf "run %d ended %s" i (Explore.outcome_to_string o));
    Alcotest.(check (list string)) "no violations" []
      (List.map (fun v -> v.Explore.invariant) r.Explore.violations)
  done

let test_fault_plan_changes_runs () =
  let base = { Explore.default_spec with Explore.seed = 21 } in
  let clean = Explore.run_once base (Explore.Script []) in
  let faulty =
    Explore.run_once
      { base with Explore.faults = lossy; reliable = true }
      (Explore.Script [])
  in
  Alcotest.(check bool) "distinct fingerprints" true
    (clean.Explore.fingerprint <> faulty.Explore.fingerprint)

(* ---------- the planted-bug acceptance path ---------- *)

(* ISSUE 2 acceptance: a seeded, fault-injected run of a scenario with a
   known protocol bug planted behind a config flag must violate an
   invariant; the minimized replay token must reproduce the violation
   with a bit-identical fingerprint on two consecutive replays. *)
let test_planted_bug_found_minimized_replayed () =
  let spec =
    {
      Explore.default_spec with
      Explore.seed = 7;
      faults = Fault.of_string "drop=0.2,dup=0.1";
      reliable = true;
      bug = true;
    }
  in
  let stats = Explore.explore_random spec ~runs:50 in
  match stats.Explore.first with
  | None -> Alcotest.fail "planted bug not found within 50 schedules"
  | Some (_, r) ->
      Alcotest.(check bool) "monitor fired" true
        (List.exists
           (fun v -> v.Explore.invariant = "get-window-atomicity")
           r.Explore.violations);
      let minimized = Explore.minimize spec r.Explore.decisions in
      Alcotest.(check bool) "minimized no longer than original" true
        (List.length minimized
        <= List.length (Token.trim_trailing_zeros r.Explore.decisions));
      let token = Explore.token_of spec minimized in
      (* the token survives its own wire format *)
      let token =
        match Token.of_string (Token.to_string token) with
        | Ok t -> t
        | Error msg -> Alcotest.fail msg
      in
      let r1 = Explore.replay token in
      let r2 = Explore.replay token in
      Alcotest.(check bool) "replay violates" true
        (r1.Explore.violations <> []);
      Alcotest.(check string) "bit-identical fingerprints"
        r1.Explore.fingerprint r2.Explore.fingerprint

let test_no_bug_no_monitor_violation () =
  (* Same spec without the planted bug: the monitor must stay silent —
     the violation really is the bug, not the harness. *)
  let spec =
    {
      Explore.default_spec with
      Explore.seed = 7;
      faults = Fault.of_string "drop=0.2,dup=0.1";
      reliable = true;
    }
  in
  let stats = Explore.explore_random spec ~runs:25 in
  Alcotest.(check int) "violations" 0 stats.Explore.violated

let test_exhaustive_finds_planted_bug () =
  let spec = { Explore.default_spec with Explore.seed = 1; bug = true } in
  let stats = Explore.explore_exhaustive spec ~depth:4 ~max_runs:100 in
  Alcotest.(check bool) "found" true (stats.Explore.first <> None)

(* ---------- differential: vector clocks vs. lockset ---------- *)

type which_workload = Random_w | Master_clean | Master_racy | Pipeline_w

let workload_name = function
  | Random_w -> "random"
  | Master_clean -> "master-worker"
  | Master_racy -> "master-worker-racy"
  | Pipeline_w -> "pipeline"

let setup_workload which env collectives ~seed =
  match which with
  | Random_w ->
      Dsm_workload.Random_access.setup env ~collectives
        {
          Dsm_workload.Random_access.default with
          ops_per_proc = 5;
          think_mean = 1.0;
          seed;
        }
  | Master_clean | Master_racy ->
      Dsm_workload.Master_worker.setup env ~collectives
        {
          Dsm_workload.Master_worker.default with
          tasks_per_worker = 2;
          racy = which = Master_racy;
          seed;
        }
  | Pipeline_w ->
      Dsm_workload.Pipeline.setup env
        { Dsm_workload.Pipeline.default with batches = 2; seed }

(* One explored schedule of one workload, with tracing on: every READ the
   vector-clock detector flags must be corroborated either by ground
   truth (an unordered conflicting pair on that granule — which always
   involves a write) or by lockset. A read flag with neither would be a
   read/read false positive the W-clock refinement (§4.4) exists to
   prevent. *)
let differential_one which ~schedule =
  let sim = Engine.create ~seed:11 () in
  let machine = Machine.create sim ~n:3 () in
  let config =
    {
      Config.default with
      Config.record_trace = true;
      granularity = Config.Word;
    }
  in
  let detector = Detector.create machine ~config () in
  let env = Env.checked detector in
  let collectives = Collectives.create env in
  setup_workload which env collectives ~seed:23;
  let chooser = Chooser.random (Prng.create ~seed:((schedule * 2654435761) + 97)) in
  Engine.set_chooser sim (Some (Chooser.fn chooser));
  (match Machine.run machine with
  | Engine.Completed -> ()
  | o ->
      Alcotest.failf "%s schedule %d did not complete: %s"
        (workload_name which) schedule
        (match o with
        | Engine.Blocked k -> Printf.sprintf "blocked(%d)" k
        | _ -> "?"));
  let trace =
    match Detector.trace detector with
    | Some t -> t
    | None -> Alcotest.fail "trace recording was on"
  in
  let ground_truth = Dsm_trace.Trace.races trace in
  let lockset_words = Dsm_baselines.Lockset.racy_words trace in
  let granule_has_ground_truth (g : Dsm_memory.Addr.region) =
    List.exists
      (fun { Dsm_trace.Trace.first; second } ->
        Dsm_memory.Addr.overlap g first.Dsm_trace.Event.target
        || Dsm_memory.Addr.overlap g second.Dsm_trace.Event.target)
      ground_truth
  in
  let granule_in_lockset (g : Dsm_memory.Addr.region) =
    let node = g.Dsm_memory.Addr.base.pid in
    let lo = g.Dsm_memory.Addr.base.offset in
    let hi = lo + g.Dsm_memory.Addr.len in
    List.exists
      (fun (n, w) -> n = node && w >= lo && w < hi)
      lockset_words
  in
  List.iter
    (fun (r : Report.race) ->
      if r.Report.kind = Dsm_trace.Event.Read then
        let g = r.Report.granule in
        if not (granule_has_ground_truth g || granule_in_lockset g) then
          Alcotest.failf
            "%s schedule %d: read flagged at %s with no ground-truth race \
             and no lockset verdict"
            (workload_name which) schedule
            (Format.asprintf "%a" Dsm_memory.Addr.pp_region g))
    (Report.races (Detector.report detector))

let test_differential_50_schedules () =
  (* 50 explored schedules spread over the workload programs (the ISSUE 2
     differential satellite): 14+12+12+12. *)
  List.iter
    (fun (which, schedules) ->
      for schedule = 0 to schedules - 1 do
        differential_one which ~schedule
      done)
    [ (Random_w, 14); (Master_clean, 12); (Master_racy, 12); (Pipeline_w, 12) ]

(* ---------- registration ---------- *)

let () =
  Alcotest.run "explore"
    [
      ( "token",
        [
          Alcotest.test_case "roundtrip" `Quick test_token_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_token_rejects_garbage;
          Alcotest.test_case "trim zeros" `Quick test_trim_trailing_zeros;
        ] );
      ( "chooser",
        [ Alcotest.test_case "scripted clamps" `Quick test_chooser_scripted_clamps ] );
      ( "invariants",
        [
          Alcotest.test_case "getput clean" `Quick test_getput_clean_schedules;
          Alcotest.test_case "workloads clean" `Slow test_workloads_clean_schedules;
          Alcotest.test_case "exhaustive clean" `Quick test_exhaustive_clean;
          Alcotest.test_case "walk = replay" `Quick test_walk_replay_identical;
        ] );
      ( "faults",
        [
          Alcotest.test_case "reliable survives" `Quick
            test_reliable_transport_survives_faults;
          Alcotest.test_case "unreliable degrades" `Quick
            test_unreliable_faults_degrade_without_wedging;
          Alcotest.test_case "plan changes run" `Quick test_fault_plan_changes_runs;
        ] );
      ( "planted-bug",
        [
          Alcotest.test_case "found, minimized, replayed" `Quick
            test_planted_bug_found_minimized_replayed;
          Alcotest.test_case "absent without flag" `Quick
            test_no_bug_no_monitor_violation;
          Alcotest.test_case "exhaustive finds it" `Quick
            test_exhaustive_finds_planted_bug;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clocks vs lockset, 50 schedules" `Slow
            test_differential_50_schedules;
        ] );
    ]
