(* Machine fuzzing: random programs over the full operation surface must
   complete, stay coherent, and be bit-deterministic. *)

open Dsm_sim
open Dsm_memory
module Machine = Dsm_rdma.Machine
module Coherence = Dsm_rdma.Coherence
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report

type fingerprint = {
  races : int;
  race_csv : string;
      (* every signal rendered with both clocks: the exact race set *)
  messages : int;
  words : int;
  time : float;
  violations : int;
  memory : int list; (* final contents of the shared variables *)
}

(* One random run: 4 processes × [ops] random operations (put / get /
   fetch_add / cas / mutex-protected RMW) over 3 shared variables. *)
let run_once ?(clock_rep = Config.Epoch_adaptive) ~seed ~ops () =
  let sim = Engine.create ~seed () in
  let latency =
    Dsm_net.Latency.Jittered
      { model = Dsm_net.Latency.Constant 1.0; mean_jitter = 2.0 }
  in
  let m = Machine.create sim ~n:4 ~latency () in
  let checker = Coherence.attach m in
  let d =
    Detector.create m
      ~config:
        { Config.default with Config.granularity = Config.Word; clock_rep }
      ()
  in
  let vars =
    Array.init 3 (fun i ->
        Machine.alloc_public m ~pid:(i + 1)
          ~name:(Printf.sprintf "v%d" i)
          ~len:4 ())
  in
  (* One mutex per variable, distinct from the data (cf. Locked_counter). *)
  let mutexes =
    Array.init 3 (fun i ->
        Machine.alloc_public m ~pid:(i + 1)
          ~name:(Printf.sprintf "m%d" i)
          ~len:1 ())
  in
  for pid = 0 to 3 do
    let g = Prng.create ~seed:(seed + (97 * pid)) in
    let plan =
      List.init ops (fun _ ->
          (Prng.int g 5, Prng.int g 3, Prng.int g 4, Prng.float g 15.0))
    in
    Machine.spawn m ~pid (fun p ->
        let buf = Machine.alloc_private m ~pid ~len:4 () in
        List.iter
          (fun (op, v, word, think) ->
            Machine.compute p think;
            let var = vars.(v) in
            let target =
              Addr.global ~pid:var.Addr.base.pid ~space:Addr.Public
                ~offset:(var.Addr.base.offset + word)
            in
            match op with
            | 0 -> Detector.put d p ~src:buf ~dst:var
            | 1 -> Detector.get d p ~src:var ~dst:buf
            | 2 -> ignore (Detector.fetch_add d p ~target ~delta:1)
            | 3 ->
                ignore
                  (Detector.cas d p ~target ~expected:0 ~desired:(pid + 1))
            | _ ->
                (* mutex-protected read-modify-write on one word *)
                let h = Detector.lock d p mutexes.(v) in
                let cell =
                  Addr.region ~pid:var.Addr.base.pid ~space:Addr.Public
                    ~offset:(var.Addr.base.offset + word)
                    ~len:1
                in
                let scratch = Machine.alloc_private m ~pid ~len:1 () in
                Detector.get d p ~src:cell ~dst:scratch;
                Detector.put d p ~src:scratch ~dst:cell;
                Detector.unlock d p h)
          plan)
  done;
  (match Machine.run m with
  | Engine.Completed -> ()
  | Engine.Blocked k -> Alcotest.failf "seed %d blocked (%d)" seed k
  | _ -> Alcotest.failf "seed %d did not complete" seed);
  {
    races = Report.count (Detector.report d);
    race_csv = Report.to_csv (Detector.report d);
    messages = Machine.fabric_messages m;
    words = Machine.fabric_words m;
    time = Engine.now sim;
    violations = List.length (Coherence.violations checker);
    memory =
      Array.to_list vars
      |> List.concat_map (fun v ->
             Array.to_list (Node_memory.read (Machine.node m v.Addr.base.pid) v));
  }

let test_fuzz_completes_and_coherent () =
  List.iter
    (fun seed ->
      let fp = run_once ~seed ~ops:15 () in
      Alcotest.(check int)
        (Printf.sprintf "seed %d coherent" seed)
        0 fp.violations;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d made progress" seed)
        true
        (fp.messages > 0 && fp.time > 0.))
    [ 11; 22; 33; 44; 55; 66; 77; 88 ]

let test_fuzz_deterministic () =
  List.iter
    (fun seed ->
      let a = run_once ~seed ~ops:12 () in
      let b = run_once ~seed ~ops:12 () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reproducible" seed)
        true (a = b))
    [ 5; 6; 7 ]

let test_fuzz_seed_sensitive () =
  let a = run_once ~seed:1 ~ops:12 () in
  let b = run_once ~seed:2 ~ops:12 () in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

(* The epoch fast path must be invisible: the always-vector ablation run
   of the same program yields a bit-identical fingerprint — including the
   rendered race set with both clocks of every signal. *)
let test_fuzz_epoch_dense_equivalent () =
  List.iter
    (fun seed ->
      let a = run_once ~clock_rep:Config.Epoch_adaptive ~seed ~ops:14 () in
      let b = run_once ~clock_rep:Config.Dense_vector ~seed ~ops:14 () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d race set" seed)
        b.race_csv a.race_csv;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d full fingerprint" seed)
        true (a = b))
    [ 3; 14; 15; 92; 65; 35 ]

let prop_epoch_dense_equivalent =
  QCheck.Test.make ~name:"epoch = dense on random traces" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 101 1_000_000))
    (fun seed ->
      run_once ~clock_rep:Config.Epoch_adaptive ~seed ~ops:10 ()
      = run_once ~clock_rep:Config.Dense_vector ~seed ~ops:10 ())

(* --- Sparse wire codec fuzz (ISSUE 5): round-trip + rejection. ------ *)

module Vector_clock = Dsm_clocks.Vector_clock
module Codec = Dsm_clocks.Codec

let check_roundtrip name c =
  let w = Codec.encode_vector_sparse c in
  let c' = Codec.decode_vector_sparse w in
  Alcotest.(check bool)
    (name ^ " round-trips") true
    (Vector_clock.equal c c');
  Alcotest.(check bool)
    (name ^ " decodes to sparse policy") true
    (Vector_clock.rep c' = Vector_clock.Sparse)

let test_codec_sparse_directed () =
  (* empty *)
  let zero = Vector_clock.create_sparse ~n:8 in
  check_roundtrip "zero clock" zero;
  Alcotest.(check int)
    "zero clock ships headers only" 2
    (Array.length (Codec.encode_vector_sparse zero));
  (* single entry *)
  let single = Vector_clock.create_sparse ~n:8 in
  Vector_clock.tick single ~me:3;
  check_roundtrip "single entry" single;
  Alcotest.(check int)
    "single entry ships one pair" 4
    (Array.length (Codec.encode_vector_sparse single));
  (* promotion boundary: exactly threshold live components, then one
     past it (the clock flips to dense storage; the codec must not
     care which side of the boundary it is on) *)
  let n = 32 in
  let thr = Vector_clock.sparse_threshold ~n in
  let at = Vector_clock.create_sparse ~n in
  for pid = 0 to thr - 1 do
    let other = Vector_clock.create_sparse ~n in
    Vector_clock.tick other ~me:pid;
    Vector_clock.merge_into ~into:at other
  done;
  Alcotest.(check bool) "at threshold still sparse" true
    (Vector_clock.is_sparse at);
  check_roundtrip "at promotion threshold" at;
  let past = Vector_clock.copy at in
  let other = Vector_clock.create_sparse ~n in
  Vector_clock.tick other ~me:thr;
  Vector_clock.merge_into ~into:past other;
  Alcotest.(check bool) "past threshold promoted" false
    (Vector_clock.is_sparse past);
  check_roundtrip "past promotion threshold" past;
  (* max pid *)
  let last = Vector_clock.create_sparse ~n:64 in
  Vector_clock.tick last ~me:63;
  check_roundtrip "max-pid entry" last;
  (* rejection: truncated, padded, and corrupted buffers all raise *)
  let w = Codec.encode_vector_sparse past in
  let rejects name w =
    match Codec.decode_vector_sparse w with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: malformed buffer was accepted" name
  in
  rejects "truncated buffer" (Array.sub w 0 (Array.length w - 1));
  rejects "padded buffer" (Array.append w [| 0 |]);
  rejects "headerless buffer" [||];
  rejects "negative pair count" [| 8; -1 |];
  rejects "pair count beyond dim" [| 2; 3; 0; 1; 1; 1; 2; 1 |];
  rejects "unsorted pids" [| 8; 2; 5; 1; 3; 1 |];
  rejects "duplicate pids" [| 8; 2; 3; 1; 3; 1 |];
  rejects "pid out of range" [| 8; 1; 8; 1 |];
  rejects "non-positive tick" [| 8; 1; 2; 0 |]

(* Random clocks of random dimension and density round-trip losslessly,
   and the sparse wire never beats the Charron-Bost bound's shape: at
   most [2n + 2] words. *)
let prop_codec_sparse_roundtrip =
  QCheck.Test.make ~name:"sparse codec round-trips random clocks" ~count:200
    QCheck.(
      make
        ~print:(fun (n, seed) -> Printf.sprintf "(n=%d, seed=%d)" n seed)
        Gen.(pair (int_range 1 64) (int_range 0 1_000_000)))
    (fun (n, seed) ->
      let g = Prng.create ~seed in
      let a =
        Array.init n (fun _ ->
            if Prng.int g 4 = 0 then 1 + Prng.int g 1_000 else 0)
      in
      let c = Vector_clock.of_array_rep Vector_clock.Sparse a in
      let w = Codec.encode_vector_sparse c in
      Array.length w <= (2 * n) + 2
      && Vector_clock.equal c (Codec.decode_vector_sparse w))

(* --- Delta / varint / piggyback codec fuzz (ISSUE 8). -------------- *)

(* Random base clocks with a random subset of components advanced: the
   delta round-trips against the same base and its payload is exactly
   [2 + 2·changed] words — the size the wire accounting banks on. *)
let prop_codec_delta_roundtrip =
  QCheck.Test.make ~name:"delta codec round-trips random advances" ~count:200
    QCheck.(
      make
        ~print:(fun (n, seed) -> Printf.sprintf "(n=%d, seed=%d)" n seed)
        Gen.(pair (int_range 1 64) (int_range 0 1_000_000)))
    (fun (n, seed) ->
      let g = Prng.create ~seed in
      let a =
        Array.init n (fun _ ->
            if Prng.int g 3 = 0 then 1 + Prng.int g 1_000 else 0)
      in
      let base = Vector_clock.of_array a in
      let b = Array.copy a in
      let changed = ref 0 in
      Array.iteri
        (fun i x ->
          if Prng.int g 4 = 0 then begin
            b.(i) <- x + 1 + Prng.int g 50;
            incr changed
          end)
        a;
      let v = Vector_clock.of_array b in
      let w = Codec.encode_vector_delta ~since:base v in
      Array.length w = 2 + (2 * !changed)
      && Vector_clock.equal v (Codec.decode_vector_delta ~base w))

(* A delta decoded against the wrong base silently reconstructs the
   wrong clock — the reason the piggyback layer refuses deltas outside
   strict per-edge FIFO. The codec itself must at least reject a base of
   the wrong dimension. *)
let test_codec_delta_since_mismatch () =
  let base = Vector_clock.of_array [| 1; 2; 3 |] in
  let v = Vector_clock.of_array [| 1; 5; 3 |] in
  let w = Codec.encode_vector_delta ~since:base v in
  (match
     Codec.decode_vector_delta ~base:(Vector_clock.create ~n:5) w
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong-dimension base was accepted");
  (* same dimension, different value: decodes, but to the value implied
     by that base — never to the sender's clock *)
  let other = Vector_clock.of_array [| 9; 2; 9 |] in
  let v' = Codec.decode_vector_delta ~base:other w in
  Alcotest.(check bool) "drifted base reconstructs a drifted clock" false
    (Vector_clock.equal v v')

let prop_codec_varint_roundtrip_random =
  QCheck.Test.make ~name:"varint codec round-trips random clocks" ~count:200
    QCheck.(
      make
        ~print:(fun (n, seed) -> Printf.sprintf "(n=%d, seed=%d)" n seed)
        Gen.(pair (int_range 1 64) (int_range 0 1_000_000)))
    (fun (n, seed) ->
      let g = Prng.create ~seed in
      let a =
        Array.init n (fun _ ->
            match Prng.int g 4 with
            | 0 -> 0
            | 1 -> Prng.int g 128
            | 2 -> 128 + Prng.int g 100_000
            | _ -> Prng.int g 1_000_000_000)
      in
      let c = Vector_clock.of_array a in
      Vector_clock.equal c
        (Codec.decode_vector_varint (Codec.encode_vector_varint c)))

(* Self-framed piggybacks under every mode: the frame round-trips, the
   adaptive mode's frame is never larger than either self-contained
   form, and tampering with the tag of a delta frame is caught. *)
let prop_codec_piggyback_roundtrip =
  QCheck.Test.make ~name:"piggyback frames round-trip random clocks"
    ~count:200
    QCheck.(
      make
        ~print:(fun (n, seed) -> Printf.sprintf "(n=%d, seed=%d)" n seed)
        Gen.(pair (int_range 1 48) (int_range 0 1_000_000)))
    (fun (n, seed) ->
      let g = Prng.create ~seed in
      let a =
        Array.init n (fun _ ->
            if Prng.int g 3 = 0 then 1 + Prng.int g 1_000 else 0)
      in
      let since = Vector_clock.of_array a in
      let b = Array.copy a in
      Array.iteri
        (fun i x -> if Prng.int g 5 = 0 then b.(i) <- x + 1 + Prng.int g 9)
        a;
      let v = Vector_clock.of_array b in
      let seq = Prng.int g 1_000 in
      let dense = Codec.encode_piggyback ~mode:Codec.Dense ~seq v in
      let sparse = Codec.encode_piggyback ~mode:Codec.Sparse ~seq v in
      let adaptive = Codec.encode_piggyback ~mode:Codec.Delta ~seq ~since v in
      let ok_roundtrip w =
        let v', s = Codec.decode_piggyback ~expect_seq:seq ~base:since w in
        Vector_clock.equal v v' && s = seq
      in
      ok_roundtrip dense && ok_roundtrip sparse && ok_roundtrip adaptive
      && Array.length adaptive <= Array.length dense
      && Array.length adaptive <= Array.length sparse)

let () =
  Alcotest.run "fuzz"
    [
      ( "machine",
        [
          Alcotest.test_case "completes + coherent" `Slow test_fuzz_completes_and_coherent;
          Alcotest.test_case "deterministic" `Slow test_fuzz_deterministic;
          Alcotest.test_case "seed sensitive" `Quick test_fuzz_seed_sensitive;
        ] );
      ( "clock-rep",
        [
          Alcotest.test_case "epoch = dense (directed seeds)" `Quick
            test_fuzz_epoch_dense_equivalent;
          QCheck_alcotest.to_alcotest prop_epoch_dense_equivalent;
        ] );
      ( "codec-sparse",
        [
          Alcotest.test_case "directed round-trips + rejection" `Quick
            test_codec_sparse_directed;
          QCheck_alcotest.to_alcotest prop_codec_sparse_roundtrip;
        ] );
      ( "codec-delta",
        [
          Alcotest.test_case "since mismatch" `Quick
            test_codec_delta_since_mismatch;
          QCheck_alcotest.to_alcotest prop_codec_delta_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_varint_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_codec_piggyback_roundtrip;
        ] );
    ]
