(* ISSUE 8: delta-encoded clock piggybacks. The wire encoding is an
   accounting-only knob: schedules, race sets, fingerprints and repro
   tokens must be bit-identical across --clock-wire settings, while the
   adaptive delta encoding must ship strictly fewer clock words than
   always-dense. This suite holds the live stack to both halves — the
   machine-level directed tests (retransmit fallback, reorder
   degradation) and the 50-walk explorer differential. *)

open Dsm_sim
open Dsm_memory
module Machine = Dsm_rdma.Machine
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Explore = Dsm_explore.Explore
module Token = Dsm_explore.Token
module Fault = Dsm_net.Fault
module Metrics = Dsm_obs.Metrics

(* The regime the delta encoding is for: [workers] active processes in
   an [n]-process machine ([workers << n] makes dense frames pay for
   every silent pid), whose clocks first get enriched with each other's
   entries through a mutex-protected shared cell, and which then settle
   into disjoint puts where only their own component advances between
   consecutive messages on an edge — many live entries, few changed
   ones, so delta beats sparse beats dense. Race-free by construction
   (the shared cell is lock-protected, the put targets disjoint). *)
let run_puts ?faults ?reliability ~wire ~n ~workers ~rounds ~seed () =
  let sim = Engine.create ~seed () in
  let m =
    Machine.create sim ~n ~latency:(Dsm_net.Latency.Constant 2.0) ?faults
      ?reliability ()
  in
  let d =
    Detector.create m
      ~config:
        {
          Config.default with
          Config.granularity = Config.Word;
          clock_wire = wire;
        }
      ()
  in
  let var = Machine.alloc_public m ~pid:0 ~name:"x" ~len:n () in
  let shared = Machine.alloc_public m ~pid:0 ~name:"c" ~len:1 () in
  let mu = Machine.alloc_public m ~pid:0 ~name:"mu" ~len:1 () in
  for pid = 1 to workers do
    Machine.spawn m ~pid (fun p ->
        let buf = Machine.alloc_private m ~pid ~len:1 () in
        let scratch = Machine.alloc_private m ~pid ~len:1 () in
        (* enrichment: the lock clock carries every previous holder's
           entries into this worker's clock *)
        for _ = 1 to 2 do
          let h = Detector.lock d p mu in
          Detector.get d p ~src:shared ~dst:scratch;
          Detector.put d p ~src:scratch ~dst:shared;
          Detector.unlock d p h
        done;
        (* steady state: disjoint targets, one component advancing *)
        let dst =
          Addr.region ~pid:0 ~space:Addr.Public
            ~offset:(var.Addr.base.offset + pid) ~len:1
        in
        for _ = 1 to rounds do
          Machine.compute p 1.0;
          Detector.put d p ~src:buf ~dst
        done)
  done;
  (match Machine.run m with
  | Engine.Completed -> ()
  | Engine.Blocked k -> Alcotest.failf "run blocked (%d)" k
  | _ -> Alcotest.fail "run did not complete");
  (m, d)

(* ---------- wire sizes across encodings ---------- *)

(* Same program under the three encodings: verdicts and nominal traffic
   are bit-identical, and the true clock bytes are strictly ordered
   delta < sparse < dense — at n = 8 each clock has few live entries
   (sparse wins over dense) and between consecutive messages on a warm
   edge few entries change (delta wins over sparse). *)
let test_wire_sizes_ordered () =
  let run wire =
    let m, d = run_puts ~wire ~n:16 ~workers:3 ~rounds:8 ~seed:11 () in
    ( Report.to_csv (Detector.report d),
      Machine.fabric_messages m,
      Machine.fabric_words m,
      Detector.clock_words_shipped d )
  in
  let races_de, msgs_de, words_de, clock_de = run Config.Dense_wire in
  let races_sp, msgs_sp, words_sp, clock_sp = run Config.Sparse_wire in
  let races_dl, msgs_dl, words_dl, clock_dl = run Config.Delta_wire in
  Alcotest.(check string) "sparse race set" races_de races_sp;
  Alcotest.(check string) "delta race set" races_de races_dl;
  Alcotest.(check int) "sparse messages" msgs_de msgs_sp;
  Alcotest.(check int) "delta messages" msgs_de msgs_dl;
  Alcotest.(check int) "sparse nominal words" words_de words_sp;
  Alcotest.(check int) "delta nominal words" words_de words_dl;
  Alcotest.(check bool)
    (Printf.sprintf "sparse < dense clock words (%d < %d)" clock_sp clock_de)
    true (clock_sp < clock_de);
  Alcotest.(check bool)
    (Printf.sprintf "delta < sparse clock words (%d < %d)" clock_dl clock_sp)
    true (clock_dl < clock_sp)

(* The encoder is adaptive: under Delta_wire it must actually emit
   delta-tagged frames once the edges are warm, and every piggyback is
   one of the three tags. *)
let test_delta_frames_emitted () =
  let m, _ = run_puts ~wire:Config.Delta_wire ~n:8 ~workers:3 ~rounds:8 ~seed:2 () in
  let dense, sparse, delta = Machine.clock_encodings m in
  Alcotest.(check bool)
    (Printf.sprintf "deltas on warm edges (%d dense, %d sparse, %d delta)"
       dense sparse delta)
    true (delta > 0);
  Alcotest.(check bool) "self-contained frames too" true (sparse + dense > 0)

(* ---------- retransmit fallback ---------- *)

(* Reliable transport over a dup+drop fabric: retransmitted frames that
   carried a delta piggyback must be re-encoded self-contained (the
   receiver's edge cache may have moved past the delta's base by
   delivery time). The run still completes, and whatever the faulted
   schedule makes the detector report, it reports bit-identically under
   the dense encoding — retransmission must not let the wire form leak
   into verdicts. *)
let test_retransmit_fallback () =
  let faulted wire =
    run_puts
      ~faults:(Fault.of_string "dup=0.4,drop=0.3")
      ~reliability:(Machine.reliability ())
      ~wire ~n:8 ~workers:3 ~rounds:8 ~seed:6 ()
  in
  let m, d = faulted Config.Delta_wire in
  Alcotest.(check bool)
    "the plan actually forced retransmits" true
    (Machine.transport_retransmits m > 0);
  let _, _, delta = Machine.clock_encodings m in
  Alcotest.(check bool) "deltas were in flight" true (delta > 0);
  Alcotest.(check bool)
    (Printf.sprintf "delta retransmits fell back (%d)"
       (Machine.clock_retransmit_fallbacks m))
    true
    (Machine.clock_retransmit_fallbacks m > 0);
  let m', d' = faulted Config.Dense_wire in
  Alcotest.(check int) "no fallbacks under dense" 0
    (Machine.clock_retransmit_fallbacks m');
  Alcotest.(check string) "race set blind to the encoding"
    (Report.to_csv (Detector.report d'))
    (Report.to_csv (Detector.report d));
  Alcotest.(check int) "retransmit schedule blind to the encoding"
    (Machine.transport_retransmits m')
    (Machine.transport_retransmits m)

(* ---------- reorder degradation ---------- *)

(* FIFO-bypass reordering without the reliable transport's resequencing
   underneath it would hand the decoder deltas against the wrong base,
   so the encoder must refuse to mint deltas at all: every piggyback on
   this run is self-contained. *)
let test_reorder_degrades_to_self_contained () =
  let m, d =
    run_puts
      ~faults:(Fault.of_string "reorder=0.5")
      ~wire:Config.Delta_wire ~n:8 ~workers:3 ~rounds:6 ~seed:9 ()
  in
  let dense, sparse, delta = Machine.clock_encodings m in
  Alcotest.(check int) "no deltas on a reordering fabric" 0 delta;
  Alcotest.(check bool) "piggybacks still flowed" true (dense + sparse > 0);
  (* whatever the reordered schedule produces, dense produces too *)
  let _, d' =
    run_puts
      ~faults:(Fault.of_string "reorder=0.5")
      ~wire:Config.Dense_wire ~n:8 ~workers:3 ~rounds:6 ~seed:9 ()
  in
  Alcotest.(check string) "race set blind to the encoding"
    (Report.to_csv (Detector.report d'))
    (Report.to_csv (Detector.report d))

(* With the reliable transport underneath, the same reordering fabric is
   resequenced before clock absorption, so deltas are allowed again. *)
let test_reliable_reorder_keeps_deltas () =
  let m, _ =
    run_puts
      ~faults:(Fault.of_string "reorder=0.5")
      ~reliability:(Machine.reliability ())
      ~wire:Config.Delta_wire ~n:8 ~workers:3 ~rounds:8 ~seed:9 ()
  in
  let _, _, delta = Machine.clock_encodings m in
  Alcotest.(check bool) "deltas under reliable resequencing" true (delta > 0)

(* ---------- 50-walk explorer differential ---------- *)

let walks = 50

let hist_sum snap name =
  match List.assoc_opt name snap.Metrics.histograms with
  | Some h -> h.Metrics.sum
  | None -> 0

let strip_wire_instruments snap =
  {
    snap with
    Metrics.histograms =
      List.filter
        (fun (name, _) ->
          name <> "net.wire_words" && name <> "net.clock_words")
        snap.Metrics.histograms;
  }

(* The same 50 walk schedules under each encoding: per-walk fingerprints,
   canonical summaries and race counts are bit-identical, every metric
   other than the wire accounting itself agrees, and the delta encoding
   ships strictly fewer clock words than dense over the batch. *)
let test_explore_differential () =
  let batch wire =
    let metrics = Metrics.create () in
    let ctx =
      Explore.create_ctx ~metrics
        {
          Explore.default_spec with
          Explore.scenario = "workload:master-worker-racy";
          n = 3;
          seed = 4;
          clock_wire = wire;
        }
    in
    let results =
      List.init walks (fun i ->
          let r = Explore.run_once_in ctx (Explore.Walk i) in
          ( Explore.outcome_to_string r.Explore.outcome,
            r.Explore.fingerprint,
            r.Explore.canon,
            r.Explore.races ))
    in
    (results, Metrics.snapshot metrics)
  in
  let res_de, snap_de = batch Config.Dense_wire in
  let res_sp, snap_sp = batch Config.Sparse_wire in
  let res_dl, snap_dl = batch Config.Delta_wire in
  List.iteri
    (fun i ((o, f, c, r), ((o', f', c', r'), (o'', f'', c'', r''))) ->
      Alcotest.(check string) (Printf.sprintf "walk %d outcome" i) o o';
      Alcotest.(check string) (Printf.sprintf "walk %d outcome" i) o o'';
      Alcotest.(check string) (Printf.sprintf "walk %d fingerprint" i) f f';
      Alcotest.(check string) (Printf.sprintf "walk %d fingerprint" i) f f'';
      Alcotest.(check string) (Printf.sprintf "walk %d canon" i) c c';
      Alcotest.(check string) (Printf.sprintf "walk %d canon" i) c c'';
      Alcotest.(check int) (Printf.sprintf "walk %d races" i) r r';
      Alcotest.(check int) (Printf.sprintf "walk %d races" i) r r'')
    (List.combine res_de (List.combine res_sp res_dl));
  (* everything but the wire accounting is blind to the encoding —
     detector.check included, so check counts match exactly *)
  Alcotest.(check bool) "sparse metrics equal modulo wire" true
    (strip_wire_instruments snap_de = strip_wire_instruments snap_sp);
  Alcotest.(check bool) "delta metrics equal modulo wire" true
    (strip_wire_instruments snap_de = strip_wire_instruments snap_dl);
  let de = hist_sum snap_de "net.clock_words"
  and sp = hist_sum snap_sp "net.clock_words"
  and dl = hist_sum snap_dl "net.clock_words" in
  Alcotest.(check bool)
    (Printf.sprintf "delta < dense clock words over %d walks (%d < %d)" walks
       dl de)
    true (dl < de);
  Alcotest.(check bool)
    (Printf.sprintf "delta <= sparse clock words (%d <= %d)" dl sp)
    true (dl <= sp)

(* ---------- minimized repro tokens ---------- *)

(* The planted-bug spec from the acceptance suite: minimization must
   walk the same shrink path under every encoding and emit the same
   token modulo the [w=] field itself. *)
let test_minimized_token_differential () =
  let base =
    {
      Explore.default_spec with
      Explore.seed = 7;
      faults = Fault.of_string "drop=0.2,dup=0.1";
      reliable = true;
      bug = true;
    }
  in
  let minimized wire =
    let spec = { base with Explore.clock_wire = wire } in
    let stats = Explore.explore_random spec ~runs:64 in
    match stats.Explore.first with
    | None -> Alcotest.fail "planted bug did not violate"
    | Some (_, r) ->
        let mins = Explore.minimize spec r.Explore.decisions in
        let tok = Explore.token_of spec mins in
        (mins, { tok with Token.clock_wire = Config.default.Config.clock_wire })
  in
  let mins_de, tok_de = minimized Config.Dense_wire in
  let mins_dl, tok_dl = minimized Config.Delta_wire in
  Alcotest.(check (list int)) "minimized decisions" mins_de mins_dl;
  Alcotest.(check string) "token modulo wire field" (Token.to_string tok_de)
    (Token.to_string tok_dl)

(* Replaying a token that pins a non-default wire reproduces the same
   fingerprint as the default-wire token of the same run. *)
let test_replay_across_wires () =
  let fp wire =
    let spec = { Explore.default_spec with Explore.clock_wire = wire } in
    match Explore.replay (Explore.token_of spec [ 1; 0; 2 ]) with
    | Error e -> Alcotest.failf "replay failed: %s" e
    | Ok r -> r.Explore.fingerprint
  in
  Alcotest.(check string) "fingerprint blind to wire" (fp Config.Dense_wire)
    (fp Config.Delta_wire)

let () =
  Alcotest.run "wire"
    [
      ( "sizes",
        [
          Alcotest.test_case "delta < sparse < dense" `Quick
            test_wire_sizes_ordered;
          Alcotest.test_case "delta frames emitted" `Quick
            test_delta_frames_emitted;
        ] );
      ( "faults",
        [
          Alcotest.test_case "retransmit fallback" `Quick
            test_retransmit_fallback;
          Alcotest.test_case "reorder degrades to self-contained" `Quick
            test_reorder_degrades_to_self_contained;
          Alcotest.test_case "reliable reorder keeps deltas" `Quick
            test_reliable_reorder_keeps_deltas;
        ] );
      ( "differential",
        [
          Alcotest.test_case "50-walk explorer differential" `Slow
            test_explore_differential;
          Alcotest.test_case "minimized token differential" `Slow
            test_minimized_token_differential;
          Alcotest.test_case "replay across wires" `Quick
            test_replay_across_wires;
        ] );
    ]
