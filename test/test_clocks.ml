(* Unit and property tests for dsm_clocks: the lattice laws behind Lemma 1. *)

open Dsm_clocks

let order_testable = Alcotest.testable Order.pp Order.equal

let vc_testable =
  Alcotest.testable Vector_clock.pp (fun a b -> Vector_clock.equal a b)

(* ---------- Order ---------- *)

let test_order_flip () =
  Alcotest.(check order_testable) "flip before" Order.After (Order.flip Order.Before);
  Alcotest.(check order_testable) "flip after" Order.Before (Order.flip Order.After);
  Alcotest.(check order_testable) "flip equal" Order.Equal (Order.flip Order.Equal);
  Alcotest.(check order_testable)
    "flip concurrent" Order.Concurrent (Order.flip Order.Concurrent)

let test_order_predicates () =
  Alcotest.(check bool) "concurrent" true (Order.concurrent Order.Concurrent);
  Alcotest.(check bool) "not concurrent" false (Order.concurrent Order.Before);
  Alcotest.(check bool) "ordered eq" true (Order.ordered Order.Equal);
  Alcotest.(check bool) "ordered conc" false (Order.ordered Order.Concurrent)

(* ---------- Lamport ---------- *)

let test_lamport_tick () =
  let c = Lamport.create () in
  Alcotest.(check int) "initial" 0 (Lamport.value c);
  Alcotest.(check int) "tick 1" 1 (Lamport.tick c);
  Alcotest.(check int) "tick 2" 2 (Lamport.tick c)

let test_lamport_observe () =
  let c = Lamport.create () in
  ignore (Lamport.tick c);
  Alcotest.(check int) "observe larger" 11 (Lamport.observe c 10);
  Alcotest.(check int) "observe smaller keeps max+1" 12 (Lamport.observe c 3)

let test_lamport_copy_independent () =
  let c = Lamport.create () in
  ignore (Lamport.tick c);
  let d = Lamport.copy c in
  ignore (Lamport.tick c);
  Alcotest.(check int) "copy frozen" 1 (Lamport.value d);
  Alcotest.(check int) "original moved" 2 (Lamport.value c)

let test_lamport_compare_total () =
  Alcotest.(check order_testable) "lt" Order.Before (Lamport.compare_values 1 2);
  Alcotest.(check order_testable) "gt" Order.After (Lamport.compare_values 5 2);
  Alcotest.(check order_testable) "eq" Order.Equal (Lamport.compare_values 3 3)

(* ---------- Vector clocks: directed cases ---------- *)

let vc l = Vector_clock.of_array (Array.of_list l)

let test_vc_create_zero () =
  let c = Vector_clock.create ~n:4 in
  Alcotest.(check bool) "zero" true (Vector_clock.is_zero c);
  Alcotest.(check int) "dim" 4 (Vector_clock.dim c)

let test_vc_create_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument
    "Vector_clock.create: dimension must be positive")
    (fun () -> ignore (Vector_clock.create ~n:0))

let test_vc_of_array_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Vector_clock.of_array: negative entry") (fun () ->
      ignore (vc [ 1; -1 ]))

let test_vc_tick () =
  let c = Vector_clock.create ~n:3 in
  Vector_clock.tick c ~me:1;
  Vector_clock.tick c ~me:1;
  Vector_clock.tick c ~me:2;
  Alcotest.(check vc_testable) "ticked" (vc [ 0; 2; 1 ]) c

let test_vc_compare_cases () =
  let check name expect a b =
    Alcotest.(check order_testable) name expect (Vector_clock.compare a b)
  in
  check "equal" Order.Equal (vc [ 1; 2 ]) (vc [ 1; 2 ]);
  check "before" Order.Before (vc [ 1; 2 ]) (vc [ 1; 3 ]);
  check "after" Order.After (vc [ 4; 2 ]) (vc [ 1; 2 ]);
  check "concurrent" Order.Concurrent (vc [ 1; 0 ]) (vc [ 0; 1 ])

let test_vc_compare_dim_mismatch () =
  Alcotest.check_raises "dim"
    (Invalid_argument "Vector_clock.compare: dimension mismatch") (fun () ->
      ignore (Vector_clock.compare (vc [ 1 ]) (vc [ 1; 2 ])))

let test_vc_merge () =
  Alcotest.(check vc_testable) "merge"
    (vc [ 3; 2; 5 ])
    (Vector_clock.merge (vc [ 3; 0; 5 ]) (vc [ 1; 2; 4 ]))

let test_vc_merge_into () =
  let a = vc [ 3; 0; 5 ] in
  Vector_clock.merge_into ~into:a (vc [ 1; 2; 4 ]);
  Alcotest.(check vc_testable) "merged in place" (vc [ 3; 2; 5 ]) a

let test_vc_snapshot_independent () =
  let a = vc [ 1; 1 ] in
  let s = Vector_clock.snapshot a in
  Vector_clock.tick a ~me:0;
  Alcotest.(check vc_testable) "snapshot frozen" (vc [ 1; 1 ]) s

let test_vc_sum_entry () =
  let a = vc [ 4; 0; 2 ] in
  Alcotest.(check int) "sum" 6 (Vector_clock.sum a);
  Alcotest.(check int) "entry" 2 (Vector_clock.entry a 2);
  Alcotest.(check int) "size_words" 3 (Vector_clock.size_words a)

(* ---------- Vector clocks: epoch representation ---------- *)

(* The adaptive clock must keep the compact epoch form through
   single-writer histories and promote exactly on the first
   cross-process advance — while remaining abstractly identical to the
   dense representation throughout. *)

let test_epoch_lifecycle () =
  let c = Vector_clock.create ~n:4 in
  Alcotest.(check bool) "born epoch" true (Vector_clock.is_epoch c);
  Vector_clock.tick c ~me:2;
  Vector_clock.tick c ~me:2;
  Alcotest.(check bool) "single-writer ticks stay epoch" true
    (Vector_clock.is_epoch c);
  Alcotest.(check vc_testable) "epoch value" (vc [ 0; 0; 2; 0 ]) c;
  Vector_clock.tick c ~me:0;
  Alcotest.(check bool) "second pid promotes" false (Vector_clock.is_epoch c);
  Alcotest.(check vc_testable) "promoted value" (vc [ 1; 0; 2; 0 ]) c

let test_epoch_dense_pinned () =
  let c = Vector_clock.create_dense ~n:3 in
  Alcotest.(check bool) "create_dense is dense" false (Vector_clock.is_epoch c);
  Vector_clock.reset c;
  Alcotest.(check bool) "reset keeps dense pinned" false
    (Vector_clock.is_epoch c);
  Alcotest.(check bool) "reset zeroes" true (Vector_clock.is_zero c)

let test_epoch_reset_reepochs () =
  let c = Vector_clock.create ~n:3 in
  Vector_clock.tick c ~me:0;
  Vector_clock.tick c ~me:1;
  Alcotest.(check bool) "promoted" false (Vector_clock.is_epoch c);
  Vector_clock.reset c;
  Alcotest.(check bool) "reset re-epochs adaptive" true
    (Vector_clock.is_epoch c);
  Alcotest.(check bool) "reset zeroes" true (Vector_clock.is_zero c)

let test_epoch_of_array () =
  Alcotest.(check bool) "one nonzero -> epoch" true
    (Vector_clock.is_epoch (vc [ 0; 7; 0 ]));
  Alcotest.(check bool) "all zero -> epoch" true
    (Vector_clock.is_epoch (vc [ 0; 0; 0 ]));
  Alcotest.(check bool) "two nonzeros -> dense" false
    (Vector_clock.is_epoch (vc [ 1; 7; 0 ]));
  Alcotest.(check bool) "~dense pins" false
    (Vector_clock.is_epoch (Vector_clock.of_array ~dense:true [| 0; 7; 0 |]))

let test_epoch_merge_transitions () =
  (* epoch <- epoch, same owner: stays epoch, takes the max. *)
  let a = vc [ 0; 3; 0 ] in
  Vector_clock.merge_into ~into:a (vc [ 0; 5; 0 ]);
  Alcotest.(check bool) "same-owner merge stays epoch" true
    (Vector_clock.is_epoch a);
  Alcotest.(check vc_testable) "same-owner merge value" (vc [ 0; 5; 0 ]) a;
  (* epoch <- epoch, different owner: promotes, merges correctly. *)
  let b = vc [ 0; 3; 0 ] in
  Vector_clock.merge_into ~into:b (vc [ 2; 0; 0 ]);
  Alcotest.(check bool) "cross-owner merge promotes" false
    (Vector_clock.is_epoch b);
  Alcotest.(check vc_testable) "cross-owner merge value" (vc [ 2; 3; 0 ]) b;
  (* zero epoch <- epoch: adopts the source epoch without promoting. *)
  let z = Vector_clock.create ~n:3 in
  Vector_clock.merge_into ~into:z (vc [ 0; 0; 9 ]);
  Alcotest.(check bool) "zero absorbs epoch compactly" true
    (Vector_clock.is_epoch z);
  Alcotest.(check vc_testable) "absorbed value" (vc [ 0; 0; 9 ]) z;
  (* dense <- epoch: O(1) single-slot update, no representation change. *)
  let d = vc [ 4; 1; 0 ] in
  Vector_clock.merge_into ~into:d (vc [ 0; 6; 0 ]);
  Alcotest.(check vc_testable) "vec absorbs epoch" (vc [ 4; 6; 0 ]) d

let test_epoch_compare_cases () =
  let check name expect a b =
    Alcotest.(check order_testable) name expect (Vector_clock.compare a b)
  in
  (* epoch/epoch, all O(1) decisions *)
  check "zero = zero" Order.Equal (vc [ 0; 0 ]) (vc [ 0; 0 ]);
  check "zero before epoch" Order.Before (vc [ 0; 0 ]) (vc [ 0; 3 ]);
  check "epoch after zero" Order.After (vc [ 0; 3 ]) (vc [ 0; 0 ]);
  check "same owner ordered" Order.Before (vc [ 0; 2 ]) (vc [ 0; 5 ]);
  check "same owner equal" Order.Equal (vc [ 4; 0 ]) (vc [ 4; 0 ]);
  check "different owners concurrent" Order.Concurrent (vc [ 3; 0 ]) (vc [ 0; 1 ]);
  (* epoch vs dense, both directions *)
  check "epoch below vec" Order.Before (vc [ 0; 2; 0 ]) (vc [ 1; 2; 0 ]);
  check "epoch above vec" Order.After (vc [ 0; 9; 0 ]) (vc [ 0; 2; 0 ]);
  check "epoch concurrent vec" Order.Concurrent (vc [ 0; 9; 0 ]) (vc [ 1; 2; 0 ]);
  check "vec above epoch" Order.After (vc [ 1; 2; 0 ]) (vc [ 0; 2; 0 ]);
  (* leq epoch fast path *)
  Alcotest.(check bool) "zero leq anything" true
    (Vector_clock.leq (vc [ 0; 0 ]) (vc [ 0; 1 ]));
  Alcotest.(check bool) "epoch leq vec" true
    (Vector_clock.leq (vc [ 0; 2 ]) (vc [ 5; 2 ]));
  Alcotest.(check bool) "epoch not leq" false
    (Vector_clock.leq (vc [ 0; 3 ]) (vc [ 5; 2 ]))

let test_epoch_words_roundtrip () =
  let w = Array.make 6 99 in
  let c = vc [ 0; 7; 0 ] in
  Vector_clock.store_words c w ~off:2;
  Alcotest.(check (array int)) "stored slice" [| 99; 99; 0; 7; 0; 99 |] w;
  let c' = Vector_clock.create ~n:3 in
  Vector_clock.load_words c' w ~off:2;
  Alcotest.(check bool) "loaded compactly" true (Vector_clock.is_epoch c');
  Alcotest.(check vc_testable) "roundtrip" c c';
  (* merge_words = merge_into of the decoded slice *)
  let m = vc [ 1; 2; 3 ] in
  Vector_clock.merge_words ~into:m w ~off:2;
  Alcotest.(check vc_testable) "merge_words" (vc [ 1; 7; 3 ]) m;
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Vector_clock.load_words: slice out of bounds")
    (fun () -> Vector_clock.load_words c' w ~off:4)

(* ---------- Sparse representation (ISSUE 5 scaling) ---------- *)

let test_sparse_lifecycle () =
  let n = 64 in
  let thr = Vector_clock.sparse_threshold ~n in
  Alcotest.(check bool) "threshold scales with n" true (thr >= 4 && thr < n);
  let c = Vector_clock.create_sparse ~n in
  Alcotest.(check bool) "born epoch" true (Vector_clock.is_epoch c);
  Vector_clock.tick c ~me:9;
  Vector_clock.tick c ~me:9;
  Alcotest.(check bool) "single-writer ticks stay epoch" true
    (Vector_clock.is_epoch c);
  (* a second pid promotes to the sorted-pairs form, not to dense *)
  let other = Vector_clock.create_sparse ~n in
  Vector_clock.tick other ~me:40;
  Vector_clock.merge_into ~into:c other;
  Alcotest.(check bool) "second pid lands sparse" true
    (Vector_clock.is_sparse c);
  Alcotest.(check int) "entry 9" 2 (Vector_clock.entry c 9);
  Alcotest.(check int) "entry 40" 1 (Vector_clock.entry c 40);
  Alcotest.(check int) "active entries" 2 (Vector_clock.active_entries c);
  (* fill to the threshold: still sparse; one past: promoted to dense *)
  for pid = 0 to thr - 3 do
    let o = Vector_clock.create_sparse ~n in
    Vector_clock.tick o ~me:pid;
    Vector_clock.merge_into ~into:c o
  done;
  Alcotest.(check int) "at threshold" thr (Vector_clock.active_entries c);
  Alcotest.(check bool) "at threshold still sparse" true
    (Vector_clock.is_sparse c);
  let o = Vector_clock.create_sparse ~n in
  Vector_clock.tick o ~me:50;
  Vector_clock.merge_into ~into:c o;
  Alcotest.(check bool) "past threshold promoted to dense" false
    (Vector_clock.is_sparse c || Vector_clock.is_epoch c);
  Alcotest.(check int) "promotion preserved entries" (thr + 1)
    (Vector_clock.active_entries c);
  (* reset restores the compact epoch form without losing capacity *)
  Vector_clock.reset c;
  Alcotest.(check bool) "reset re-epochs" true (Vector_clock.is_epoch c);
  Alcotest.(check bool) "reset zeroes" true (Vector_clock.is_zero c);
  Alcotest.(check bool) "policy survives reset" true
    (Vector_clock.rep c = Vector_clock.Sparse)

let test_sparse_merge_scan () =
  (* interleaved active pids exercise every branch of the merge scan:
     left-only, right-only, and both-present components *)
  let mk l = Vector_clock.of_array_rep Vector_clock.Sparse (Array.of_list l) in
  let a = mk [ 0; 5; 0; 3; 0; 0; 1; 0 ] in
  let b = mk [ 2; 0; 0; 7; 0; 4; 0; 0 ] in
  let m = Vector_clock.merge a b in
  Alcotest.(check (array int)) "merge scan"
    [| 2; 5; 0; 7; 0; 4; 1; 0 |]
    (Vector_clock.to_array m);
  Vector_clock.merge_into ~into:a b;
  Alcotest.(check (array int)) "merge_into scan"
    [| 2; 5; 0; 7; 0; 4; 1; 0 |]
    (Vector_clock.to_array a)

let test_sparse_compare_cases () =
  let mk l = Vector_clock.of_array_rep Vector_clock.Sparse (Array.of_list l) in
  let x = mk [ 1; 0; 2; 0 ] in
  let y = mk [ 1; 0; 3; 0 ] in
  let z = mk [ 0; 4; 0; 0 ] in
  Alcotest.(check bool) "before" true
    (Order.equal Order.Before (Vector_clock.compare x y));
  Alcotest.(check bool) "after" true
    (Order.equal Order.After (Vector_clock.compare y x));
  Alcotest.(check bool) "concurrent" true (Vector_clock.concurrent x z);
  Alcotest.(check bool) "equal" true
    (Order.equal Order.Equal (Vector_clock.compare x (mk [ 1; 0; 2; 0 ])));
  (* mixed representations compare the same abstract vector *)
  let xd = Vector_clock.of_array ~dense:true [| 1; 0; 2; 0 |] in
  Alcotest.(check bool) "sparse vs dense" true
    (Order.equal Order.Before (Vector_clock.compare xd y))

(* ---------- Vector clocks: properties ---------- *)

let gen_vc n =
  QCheck.Gen.(array_size (return n) (int_bound 8) >|= Vector_clock.of_array)

let arb_vc_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Vector_clock.to_string a ^ " / " ^ Vector_clock.to_string b)
    QCheck.Gen.(
      int_range 1 6 >>= fun n ->
      pair (gen_vc n) (gen_vc n))

let arb_vc_triple =
  QCheck.make
    ~print:(fun (a, b, c) ->
      String.concat " / "
        (List.map Vector_clock.to_string [ a; b; c ]))
    QCheck.Gen.(
      int_range 1 6 >>= fun n ->
      triple (gen_vc n) (gen_vc n) (gen_vc n))

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"compare a b = flip (compare b a)" ~count:500
    arb_vc_pair (fun (a, b) ->
      Order.equal (Vector_clock.compare a b)
        (Order.flip (Vector_clock.compare b a)))

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge dominates both operands" ~count:500 arb_vc_pair
    (fun (a, b) ->
      let m = Vector_clock.merge a b in
      Vector_clock.leq a m && Vector_clock.leq b m)

let prop_merge_least =
  QCheck.Test.make ~name:"merge is the least upper bound" ~count:500
    arb_vc_triple (fun (a, b, c) ->
      let m = Vector_clock.merge a b in
      if Vector_clock.leq a c && Vector_clock.leq b c then
        Vector_clock.leq m c
      else true)

let prop_merge_commutative_idempotent =
  QCheck.Test.make ~name:"merge commutative and idempotent" ~count:500
    arb_vc_pair (fun (a, b) ->
      Vector_clock.equal (Vector_clock.merge a b) (Vector_clock.merge b a)
      && Vector_clock.equal (Vector_clock.merge a a) a)

let prop_tick_strictly_after =
  QCheck.Test.make ~name:"tick moves strictly after" ~count:500 arb_vc_pair
    (fun (a, _) ->
      let before = Vector_clock.copy a in
      Vector_clock.tick a ~me:0;
      Vector_clock.compare before a = Order.Before)

let prop_leq_transitive =
  QCheck.Test.make ~name:"leq is transitive" ~count:500 arb_vc_triple
    (fun (a, b, c) ->
      if Vector_clock.leq a b && Vector_clock.leq b c then Vector_clock.leq a c
      else true)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"dense codec roundtrip" ~count:500 arb_vc_pair
    (fun (a, _) ->
      Vector_clock.equal a (Codec.decode_vector (Codec.encode_vector a)))

let prop_varint_codec_roundtrip =
  QCheck.Test.make ~name:"varint codec roundtrip" ~count:500 arb_vc_pair
    (fun (a, _) ->
      Vector_clock.equal a
        (Codec.decode_vector_varint (Codec.encode_vector_varint a)))

let prop_varint_at_least_one_byte_per_entry =
  QCheck.Test.make ~name:"varint lower bound (>= n+1 bytes)" ~count:500
    arb_vc_pair (fun (a, _) ->
      Bytes.length (Codec.encode_vector_varint a) >= Vector_clock.dim a + 1)

(* Adaptive ≡ dense: the same random history applied to an adaptive and a
   dense clock yields abstractly equal clocks at every step, and the two
   representations of the same value compare identically against any
   third clock — representation must never leak into a verdict. *)

type clock_op = Tick of int | Merge of int array | Reset

let gen_ops n =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (frequency
         [
           (4, int_bound (n - 1) >|= fun p -> Tick p);
           (3, array_size (return n) (int_bound 5) >|= fun a -> Merge a);
           (1, return Reset);
         ]))

let arb_history =
  let print (n, ops) =
    Printf.sprintf "n=%d " n
    ^ String.concat ";"
      (List.map
         (function
           | Tick p -> Printf.sprintf "tick %d" p
           | Merge a ->
               "merge "
               ^ String.concat ","
                   (Array.to_list (Array.map string_of_int a))
           | Reset -> "reset")
         ops)
  in
  QCheck.make ~print
    QCheck.Gen.(int_range 1 6 >>= fun n -> pair (return n) (gen_ops n))

let apply_op c = function
  | Tick p -> Vector_clock.tick c ~me:p
  | Merge a -> Vector_clock.merge_into ~into:c (Vector_clock.of_array a)
  | Reset -> Vector_clock.reset c

let prop_adaptive_equals_dense =
  QCheck.Test.make ~name:"adaptive history = dense history" ~count:500
    arb_history (fun (n, ops) ->
      let a = Vector_clock.create ~n in
      let d = Vector_clock.create_dense ~n in
      List.for_all
        (fun op ->
          apply_op a op;
          apply_op d op;
          Vector_clock.equal a d
          && Vector_clock.to_array a = Vector_clock.to_array d)
        ops)

let prop_sparse_equals_dense =
  QCheck.Test.make ~name:"sparse history = dense history" ~count:500
    arb_history (fun (n, ops) ->
      let s = Vector_clock.create_sparse ~n in
      let d = Vector_clock.create_dense ~n in
      List.for_all
        (fun op ->
          apply_op s op;
          apply_op d op;
          Vector_clock.equal s d
          && Vector_clock.to_array s = Vector_clock.to_array d)
        ops)

let prop_representation_blind_compare =
  QCheck.Test.make ~name:"compare blind to representation" ~count:500
    arb_vc_pair (fun (x, y) ->
      let dense v = Vector_clock.of_array ~dense:true (Vector_clock.to_array v) in
      let expected = Vector_clock.compare (dense x) (dense y) in
      Order.equal expected (Vector_clock.compare x y)
      && Order.equal expected (Vector_clock.compare x (dense y))
      && Order.equal expected (Vector_clock.compare (dense x) y)
      && Vector_clock.leq x y = Vector_clock.leq (dense x) (dense y))

let prop_words_roundtrip =
  QCheck.Test.make ~name:"store_words/load_words roundtrip" ~count:500
    arb_vc_pair (fun (x, _) ->
      let w = Array.make (Vector_clock.dim x + 2) 0 in
      Vector_clock.store_words x w ~off:1;
      let c = Vector_clock.create ~n:(Vector_clock.dim x) in
      Vector_clock.load_words c w ~off:1;
      Vector_clock.equal x c)

(* Word slices embedded at an arbitrary position inside a larger buffer —
   the layout Clock_store entries and piggybacked NIC frames rely on.
   Words outside the slice must survive the store untouched. *)
let arb_vc_pair_off =
  QCheck.make
    ~print:(fun ((a, b), off) ->
      Printf.sprintf "%s / %s @ %d" (Vector_clock.to_string a)
        (Vector_clock.to_string b) off)
    QCheck.Gen.(
      int_range 1 6 >>= fun n ->
      pair (pair (gen_vc n) (gen_vc n)) (int_range 0 9))

let prop_slice_roundtrip_mid_buffer =
  QCheck.Test.make ~name:"store/load_words mid-buffer, frame intact"
    ~count:500 arb_vc_pair_off (fun ((x, _), off) ->
      let n = Vector_clock.dim x in
      let sentinel = -12345 in
      let w = Array.make (off + n + 3) sentinel in
      Vector_clock.store_words x w ~off;
      let frame_ok = ref true in
      Array.iteri
        (fun i v ->
          if (i < off || i >= off + n) && v <> sentinel then frame_ok := false)
        w;
      let c = Vector_clock.create ~n in
      Vector_clock.load_words c w ~off;
      !frame_ok && Vector_clock.equal x c)

let prop_merge_words_equals_merge_into =
  QCheck.Test.make ~name:"merge_words = merge_into of decoded slice"
    ~count:500 arb_vc_pair_off (fun ((x, y), off) ->
      let n = Vector_clock.dim x in
      let w = Array.make (off + n) 0 in
      Vector_clock.store_words y w ~off;
      let via_words = Vector_clock.copy x in
      Vector_clock.merge_words ~into:via_words w ~off;
      let via_merge = Vector_clock.copy x in
      Vector_clock.merge_into ~into:via_merge y;
      Vector_clock.equal via_words via_merge)

let prop_delta_codec_roundtrip =
  QCheck.Test.make ~name:"delta codec roundtrip" ~count:500 arb_vc_pair
    (fun (base, v) ->
      let w = Codec.encode_vector_delta ~since:base v in
      Vector_clock.equal v (Codec.decode_vector_delta ~base w))

(* ---------- Matrix clocks ---------- *)

let test_mc_create () =
  let m = Matrix_clock.create ~n:3 ~me:1 in
  Alcotest.(check int) "dim" 3 (Matrix_clock.dim m);
  Alcotest.(check int) "owner" 1 (Matrix_clock.owner m);
  Alcotest.(check bool) "zero own vector" true
    (Vector_clock.is_zero (Matrix_clock.own_vector m))

let test_mc_tick () =
  let m = Matrix_clock.create ~n:3 ~me:1 in
  Matrix_clock.tick m;
  Matrix_clock.tick m;
  Alcotest.(check int) "diagonal" 2 (Matrix_clock.entry m 1 1);
  Alcotest.(check vc_testable) "own row" (vc [ 0; 2; 0 ])
    (Matrix_clock.own_vector m)

let test_mc_observe () =
  let a = Matrix_clock.create ~n:2 ~me:0 in
  let b = Matrix_clock.create ~n:2 ~me:1 in
  Matrix_clock.tick a;
  Matrix_clock.tick b;
  Matrix_clock.tick b;
  Matrix_clock.observe a b;
  (* a's principal row absorbs b's principal row. *)
  Alcotest.(check vc_testable) "a knows b" (vc [ 1; 2 ])
    (Matrix_clock.own_vector a);
  (* a's row for b holds b's vector. *)
  Alcotest.(check vc_testable) "a's view of b" (vc [ 0; 2 ])
    (Matrix_clock.row a 1)

let test_mc_min_known () =
  let a = Matrix_clock.create ~n:2 ~me:0 in
  Matrix_clock.tick a;
  (* Row 1 still zero: nothing is known to be known by everyone. *)
  Alcotest.(check int) "min over column 0" 0 (Matrix_clock.min_known a 0)

let test_mc_codec_roundtrip () =
  let a = Matrix_clock.create ~n:3 ~me:2 in
  Matrix_clock.tick a;
  let b = Matrix_clock.create ~n:3 ~me:0 in
  Matrix_clock.tick b;
  Matrix_clock.observe a b;
  let a' = Codec.decode_matrix (Codec.encode_matrix a) in
  Alcotest.(check int) "owner" (Matrix_clock.owner a) (Matrix_clock.owner a');
  for i = 0 to 2 do
    Alcotest.(check vc_testable)
      (Printf.sprintf "row %d" i)
      (Matrix_clock.row a i) (Matrix_clock.row a' i)
  done

let test_mc_of_rows_invalid () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Matrix_clock.of_rows: not square") (fun () ->
      ignore (Matrix_clock.of_rows ~me:0 [| [| 1; 2 |]; [| 3 |] |]))

let test_mc_size_words () =
  let m = Matrix_clock.create ~n:5 ~me:0 in
  Alcotest.(check int) "n^2" 25 (Matrix_clock.size_words m)

(* ---------- Codec edges ---------- *)

let test_codec_varint_malformed () =
  Alcotest.check_raises "truncated"
    (Invalid_argument "Codec.decode_vector_varint: truncated") (fun () ->
      ignore (Codec.decode_vector_varint (Bytes.of_string "\x02\x01")));
  Alcotest.check_raises "trailing"
    (Invalid_argument "Codec.decode_vector_varint: trailing bytes") (fun () ->
      ignore (Codec.decode_vector_varint (Bytes.of_string "\x01\x01\x01")))

let test_codec_varint_large_values () =
  let v = Vector_clock.of_array [| 0; 127; 128; 300; 1_000_000 |] in
  Alcotest.(check bool) "roundtrip big counters" true
    (Vector_clock.equal v
       (Codec.decode_vector_varint (Codec.encode_vector_varint v)))

let test_codec_malformed () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Codec.decode_vector: empty buffer") (fun () ->
      ignore (Codec.decode_vector [||]));
  Alcotest.check_raises "bad header"
    (Invalid_argument "Codec.decode_vector: malformed buffer") (fun () ->
      ignore (Codec.decode_vector [| 3; 1 |]))

let test_codec_matrix_malformed () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Codec.decode_matrix: empty buffer") (fun () ->
      ignore (Codec.decode_matrix [||]));
  Alcotest.check_raises "bad owner"
    (Invalid_argument "Codec.decode_matrix: malformed buffer") (fun () ->
      ignore (Codec.decode_matrix [| 2; 5; 0; 0; 0; 0 |]))

let test_codec_sizes () =
  let v = Vector_clock.create ~n:8 in
  Alcotest.(check int) "dense words" 9 (Array.length (Codec.encode_vector v));
  Alcotest.(check int) "bytes" 72
    (Codec.bytes_of_words (Array.length (Codec.encode_vector v)));
  let w = Codec.encode_vector_delta ~since:v v in
  Alcotest.(check int) "empty delta" 2 (Array.length w)

(* The delta decoder gets the same reject coverage as the sparse one:
   every malformed shape is a clean [Invalid_argument], never an
   out-of-bounds access or an attacker-sized allocation. *)
let test_codec_delta_malformed () =
  let base = Vector_clock.of_array [| 1; 0; 2 |] in
  Alcotest.check_raises "empty"
    (Invalid_argument "Codec.decode_vector_delta: empty") (fun () ->
      ignore (Codec.decode_vector_delta ~base [||]));
  Alcotest.check_raises "dimension mismatch vs base"
    (Invalid_argument "Codec.decode_vector_delta: malformed buffer") (fun () ->
      ignore (Codec.decode_vector_delta ~base [| 4; 0 |]));
  Alcotest.check_raises "negative entry count"
    (Invalid_argument "Codec.decode_vector_delta: malformed buffer") (fun () ->
      ignore (Codec.decode_vector_delta ~base [| 3; -1 |]));
  Alcotest.check_raises "truncated pair list"
    (Invalid_argument "Codec.decode_vector_delta: malformed buffer") (fun () ->
      ignore (Codec.decode_vector_delta ~base [| 3; 1 |]));
  Alcotest.check_raises "padded pair list"
    (Invalid_argument "Codec.decode_vector_delta: malformed buffer") (fun () ->
      ignore (Codec.decode_vector_delta ~base [| 3; 1; 0; 5; 0 |]));
  Alcotest.check_raises "pid out of range"
    (Invalid_argument "Codec.decode_vector_delta: malformed entry") (fun () ->
      ignore (Codec.decode_vector_delta ~base [| 3; 1; 3; 5 |]));
  Alcotest.check_raises "negative pid"
    (Invalid_argument "Codec.decode_vector_delta: malformed entry") (fun () ->
      ignore (Codec.decode_vector_delta ~base [| 3; 1; -1; 5 |]));
  Alcotest.check_raises "negative component"
    (Invalid_argument "Codec.decode_vector_delta: malformed entry") (fun () ->
      ignore (Codec.decode_vector_delta ~base [| 3; 1; 0; -2 |]));
  Alcotest.check_raises "encode dimension mismatch"
    (Invalid_argument "Codec.encode_vector_delta: dimension mismatch")
    (fun () ->
      ignore
        (Codec.encode_vector_delta
           ~since:(Vector_clock.create ~n:2)
           base))

(* Self-framed piggybacks: mode/seq accessors, the adaptive encoder's
   tag choices, and the decoder's defence against out-of-sequence or
   baseless deltas. *)
let test_codec_piggyback () =
  let v = Vector_clock.of_array [| 2; 0; 1; 0; 0; 0; 0; 0 |] in
  (* dense and sparse frames are self-contained: any expected seq decodes *)
  let wd = Codec.encode_piggyback ~mode:Codec.Dense ~seq:7 v in
  Alcotest.(check bool) "dense tag" true (Codec.piggyback_mode_of wd = Codec.Dense);
  Alcotest.(check int) "dense seq" 7 (Codec.piggyback_seq wd);
  let v', s = Codec.decode_piggyback ~expect_seq:99 wd in
  Alcotest.(check bool) "dense roundtrip" true (Vector_clock.equal v v');
  Alcotest.(check int) "dense carried seq" 7 s;
  let ws = Codec.encode_piggyback ~mode:Codec.Sparse ~seq:0 v in
  Alcotest.(check bool) "sparse tag" true
    (Codec.piggyback_mode_of ws = Codec.Sparse);
  let v', _ = Codec.decode_piggyback ~expect_seq:3 ws in
  Alcotest.(check bool) "sparse roundtrip" true (Vector_clock.equal v v');
  (* adaptive: with a near base the delta frame wins and is pinned to
     its seq and base *)
  let since = Vector_clock.of_array [| 1; 0; 1; 0; 0; 0; 0; 0 |] in
  let wdl = Codec.encode_piggyback ~mode:Codec.Delta ~seq:3 ~since v in
  Alcotest.(check bool) "delta tag" true
    (Codec.piggyback_mode_of wdl = Codec.Delta);
  let v', _ = Codec.decode_piggyback ~expect_seq:3 ~base:since wdl in
  Alcotest.(check bool) "delta roundtrip" true (Vector_clock.equal v v');
  (* empty-delta edge: unchanged clock ships a two-word payload *)
  let we = Codec.encode_piggyback ~mode:Codec.Delta ~seq:4 ~since:v v in
  Alcotest.(check bool) "empty delta tag" true
    (Codec.piggyback_mode_of we = Codec.Delta);
  Alcotest.(check int) "empty delta frame" 4 (Array.length we);
  let v', _ = Codec.decode_piggyback ~expect_seq:4 ~base:v we in
  Alcotest.(check bool) "empty delta roundtrip" true (Vector_clock.equal v v');
  (* since-mismatch edge: a base of the wrong dimension cannot be
     diffed against, so the encoder degrades to self-contained *)
  let wm =
    Codec.encode_piggyback ~mode:Codec.Delta ~seq:5
      ~since:(Vector_clock.create ~n:4) v
  in
  Alcotest.(check bool) "mismatched base degrades" true
    (Codec.piggyback_mode_of wm <> Codec.Delta);
  let wn = Codec.encode_piggyback ~mode:Codec.Delta ~seq:5 v in
  Alcotest.(check bool) "no base degrades" true
    (Codec.piggyback_mode_of wn <> Codec.Delta);
  (* rejects *)
  Alcotest.check_raises "negative seq (encode)"
    (Invalid_argument "Codec.encode_piggyback: negative seq") (fun () ->
      ignore (Codec.encode_piggyback ~mode:Codec.Dense ~seq:(-1) v));
  Alcotest.check_raises "truncated frame"
    (Invalid_argument "Codec.decode_piggyback: truncated frame") (fun () ->
      ignore (Codec.decode_piggyback ~expect_seq:0 [| 0 |]));
  Alcotest.check_raises "unknown tag"
    (Invalid_argument "Codec.decode_piggyback: unknown tag") (fun () ->
      ignore (Codec.decode_piggyback ~expect_seq:0 [| 9; 0; 1; 1 |]));
  Alcotest.check_raises "negative seq (decode)"
    (Invalid_argument "Codec.decode_piggyback: negative seq") (fun () ->
      ignore (Codec.decode_piggyback ~expect_seq:0 [| 1; -2; 8; 0 |]));
  Alcotest.check_raises "out-of-sequence delta"
    (Invalid_argument "Codec.decode_piggyback: out-of-sequence delta")
    (fun () ->
      ignore (Codec.decode_piggyback ~expect_seq:4 ~base:since wdl));
  Alcotest.check_raises "delta without base"
    (Invalid_argument "Codec.decode_piggyback: delta without base") (fun () ->
      ignore (Codec.decode_piggyback ~expect_seq:3 wdl))

let qsuite = List.map QCheck_alcotest.to_alcotest
  [
    prop_compare_antisymmetric;
    prop_merge_upper_bound;
    prop_merge_least;
    prop_merge_commutative_idempotent;
    prop_tick_strictly_after;
    prop_leq_transitive;
    prop_adaptive_equals_dense;
    prop_sparse_equals_dense;
    prop_representation_blind_compare;
    prop_words_roundtrip;
    prop_slice_roundtrip_mid_buffer;
    prop_merge_words_equals_merge_into;
    prop_codec_roundtrip;
    prop_delta_codec_roundtrip;
    prop_varint_codec_roundtrip;
    prop_varint_at_least_one_byte_per_entry;
  ]

let () =
  Alcotest.run "clocks"
    [
      ( "order",
        [
          Alcotest.test_case "flip" `Quick test_order_flip;
          Alcotest.test_case "predicates" `Quick test_order_predicates;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "tick" `Quick test_lamport_tick;
          Alcotest.test_case "observe" `Quick test_lamport_observe;
          Alcotest.test_case "copy" `Quick test_lamport_copy_independent;
          Alcotest.test_case "compare" `Quick test_lamport_compare_total;
        ] );
      ( "vector",
        [
          Alcotest.test_case "create zero" `Quick test_vc_create_zero;
          Alcotest.test_case "create invalid" `Quick test_vc_create_invalid;
          Alcotest.test_case "of_array negative" `Quick test_vc_of_array_negative;
          Alcotest.test_case "tick" `Quick test_vc_tick;
          Alcotest.test_case "compare cases" `Quick test_vc_compare_cases;
          Alcotest.test_case "compare mismatch" `Quick test_vc_compare_dim_mismatch;
          Alcotest.test_case "merge" `Quick test_vc_merge;
          Alcotest.test_case "merge_into" `Quick test_vc_merge_into;
          Alcotest.test_case "snapshot" `Quick test_vc_snapshot_independent;
          Alcotest.test_case "sum/entry/size" `Quick test_vc_sum_entry;
        ] );
      ( "vector-epoch",
        [
          Alcotest.test_case "lifecycle" `Quick test_epoch_lifecycle;
          Alcotest.test_case "dense pinned" `Quick test_epoch_dense_pinned;
          Alcotest.test_case "reset re-epochs" `Quick test_epoch_reset_reepochs;
          Alcotest.test_case "of_array" `Quick test_epoch_of_array;
          Alcotest.test_case "merge transitions" `Quick
            test_epoch_merge_transitions;
          Alcotest.test_case "compare cases" `Quick test_epoch_compare_cases;
          Alcotest.test_case "words roundtrip" `Quick test_epoch_words_roundtrip;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "lifecycle + promotion" `Quick
            test_sparse_lifecycle;
          Alcotest.test_case "merge scan" `Quick test_sparse_merge_scan;
          Alcotest.test_case "compare cases" `Quick test_sparse_compare_cases;
        ] );
      ("vector-properties", qsuite);
      ( "matrix",
        [
          Alcotest.test_case "create" `Quick test_mc_create;
          Alcotest.test_case "tick" `Quick test_mc_tick;
          Alcotest.test_case "observe" `Quick test_mc_observe;
          Alcotest.test_case "min_known" `Quick test_mc_min_known;
          Alcotest.test_case "codec roundtrip" `Quick test_mc_codec_roundtrip;
          Alcotest.test_case "of_rows invalid" `Quick test_mc_of_rows_invalid;
          Alcotest.test_case "size_words" `Quick test_mc_size_words;
        ] );
      ( "codec",
        [
          Alcotest.test_case "malformed" `Quick test_codec_malformed;
          Alcotest.test_case "varint malformed" `Quick test_codec_varint_malformed;
          Alcotest.test_case "varint large" `Quick test_codec_varint_large_values;
          Alcotest.test_case "matrix malformed" `Quick test_codec_matrix_malformed;
          Alcotest.test_case "sizes" `Quick test_codec_sizes;
          Alcotest.test_case "delta malformed" `Quick test_codec_delta_malformed;
          Alcotest.test_case "piggyback" `Quick test_codec_piggyback;
        ] );
    ]
