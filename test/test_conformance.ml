(* Cross-representation conformance: the three clock representations
   (adaptive epoch, always-dense vector, sparse) must be observably
   identical — same race set, same message trace, same memory — over
   hundreds of randomized schedules; and batched coherence must be
   detection-invisible: the racy-granule set of an explored workload is
   bit-identical whether or not the transport coalesces. *)

open Dsm_sim
open Dsm_memory
module Machine = Dsm_rdma.Machine
module Coherence = Dsm_rdma.Coherence
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Explore = Dsm_explore.Explore
module Probe = Dsm_obs.Probe

(* ------------------------------------------------------------------ *)
(* Part 1: dense = epoch = sparse over randomized schedules.           *)
(* ------------------------------------------------------------------ *)

type fingerprint = {
  races : int;
  race_csv : string; (* every signal with both clocks: the exact race set *)
  messages : int;
  words : int;
  time : float;
  violations : int;
  memory : int list;
  final_clocks : string; (* every process clock, rendered *)
}

(* One random run over [n] processes and [max 3 (n/2)] shared variables:
   puts, gets, atomics (fetch_add / CAS), whole-variable accumulates and
   mutex-protected RMWs. Gets and atomics absorb remote clocks, so at
   larger [n] accessor clocks accumulate many active components and
   cross the sparse representation's dense-promotion threshold — the
   regime Part 1 must also cover, now including RMW S-clock traffic
   across that boundary. *)
let run_once ~clock_rep ~n ~seed ~ops () =
  let sim = Engine.create ~seed () in
  let latency =
    Dsm_net.Latency.Jittered
      { model = Dsm_net.Latency.Constant 1.0; mean_jitter = 2.0 }
  in
  let m = Machine.create sim ~n ~latency () in
  let checker = Coherence.attach m in
  let d =
    Detector.create m
      ~config:
        { Config.default with Config.granularity = Config.Word; clock_rep }
      ()
  in
  let nvars = max 3 (n / 2) in
  let vars =
    Array.init nvars (fun i ->
        Machine.alloc_public m ~pid:(i mod n)
          ~name:(Printf.sprintf "v%d" i)
          ~len:4 ())
  in
  let mutexes =
    Array.init nvars (fun i ->
        Machine.alloc_public m ~pid:(i mod n)
          ~name:(Printf.sprintf "m%d" i)
          ~len:1 ())
  in
  for pid = 0 to n - 1 do
    let g = Prng.create ~seed:(seed + (97 * pid)) in
    let plan =
      List.init ops (fun _ ->
          (Prng.int g 6, Prng.int g nvars, Prng.int g 4, Prng.float g 15.0))
    in
    Machine.spawn m ~pid (fun p ->
        let buf = Machine.alloc_private m ~pid ~len:4 () in
        List.iter
          (fun (op, v, word, think) ->
            Machine.compute p think;
            let var = vars.(v) in
            let target =
              Addr.global ~pid:var.Addr.base.pid ~space:Addr.Public
                ~offset:(var.Addr.base.offset + word)
            in
            match op with
            | 0 -> Detector.put d p ~src:buf ~dst:var
            | 1 -> Detector.get d p ~src:var ~dst:buf
            | 2 -> ignore (Detector.fetch_add d p ~target ~delta:1)
            | 3 ->
                ignore
                  (Detector.cas d p ~target ~expected:0 ~desired:(pid + 1))
            | 4 ->
                (* multi-word RMW: accumulate over the whole variable *)
                let aop =
                  [| Dsm_rdma.Message.Add; Min; Max; Bor |].(word)
                in
                ignore (Detector.accumulate d p ~src:buf ~dst:var ~aop)
            | _ ->
                let h = Detector.lock d p mutexes.(v) in
                let cell =
                  Addr.region ~pid:var.Addr.base.pid ~space:Addr.Public
                    ~offset:(var.Addr.base.offset + word)
                    ~len:1
                in
                let scratch = Machine.alloc_private m ~pid ~len:1 () in
                Detector.get d p ~src:cell ~dst:scratch;
                Detector.put d p ~src:scratch ~dst:cell;
                Detector.unlock d p h)
          plan)
  done;
  (match Machine.run m with
  | Engine.Completed -> ()
  | Engine.Blocked k -> Alcotest.failf "seed %d blocked (%d)" seed k
  | _ -> Alcotest.failf "seed %d did not complete" seed);
  {
    races = Report.count (Detector.report d);
    race_csv = Report.to_csv (Detector.report d);
    messages = Machine.fabric_messages m;
    words = Machine.fabric_words m;
    time = Engine.now sim;
    violations = List.length (Coherence.violations checker);
    memory =
      Array.to_list vars
      |> List.concat_map (fun v ->
             Array.to_list (Node_memory.read (Machine.node m v.Addr.base.pid) v));
    final_clocks =
      String.concat ";"
        (List.init n (fun pid ->
             Dsm_clocks.Vector_clock.to_string (Detector.proc_clock d pid)));
  }

let reps =
  [
    ("epoch", Config.Epoch_adaptive);
    ("dense", Config.Dense_vector);
    ("sparse", Config.Sparse_vector);
  ]

let check_conformant ~n ~seed ~ops =
  match
    List.map (fun (name, rep) -> (name, run_once ~clock_rep:rep ~n ~seed ~ops ()))
      reps
  with
  | (_, ref_fp) :: rest ->
      List.iter
        (fun (name, fp) ->
          Alcotest.(check string)
            (Printf.sprintf "n=%d seed %d: %s race set" n seed name)
            ref_fp.race_csv fp.race_csv;
          Alcotest.(check bool)
            (Printf.sprintf "n=%d seed %d: %s full fingerprint" n seed name)
            true (fp = ref_fp))
        rest;
      ref_fp
  | [] -> assert false

(* Directed small-n seeds: mostly-epoch clocks, the adaptive fast path. *)
let test_conformance_directed () =
  List.iter
    (fun seed ->
      let fp = check_conformant ~n:4 ~seed ~ops:12 in
      Alcotest.(check int)
        (Printf.sprintf "seed %d coherent" seed)
        0 fp.violations)
    [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610; 987 ]

(* Directed promotion-boundary seeds: n = 16 with threshold max 4 (n/8)
   = 4, so any clock with five active components has been promoted to
   dense storage mid-run — sparse must survive the round trip. *)
let test_conformance_promotion () =
  List.iter
    (fun seed -> ignore (check_conformant ~n:16 ~seed ~ops:8))
    [ 7; 19; 42; 101; 257 ]

(* Randomized schedules. Together with the directed cases above and the
   batched differential below, the suite covers > 500 schedules; each
   QCheck case is one schedule compared across all three
   representations. *)
let prop_conformant_small =
  QCheck.Test.make ~name:"epoch = dense = sparse (n=4)" ~count:380
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1_000 2_000_000))
    (fun seed ->
      ignore (check_conformant ~n:4 ~seed ~ops:8);
      true)

let prop_conformant_wide =
  QCheck.Test.make ~name:"epoch = dense = sparse (n=12, past threshold)"
    ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1_000 2_000_000))
    (fun seed ->
      ignore (check_conformant ~n:12 ~seed ~ops:6);
      true)

(* ------------------------------------------------------------------ *)
(* Part 2: batched coherence is detection-invisible.                   *)
(* ------------------------------------------------------------------ *)

(* Per-run probe collector: racy granules, check/message/batch counts. *)
type collector = {
  mutable granules : (int * int * int) list; (* (node, offset, len) *)
  mutable checks : int;
  mutable msgs : int;
  mutable flushes : int;
}

let attach_collector ctx =
  let c = { granules = []; checks = 0; msgs = 0; flushes = 0 } in
  Probe.attach (Explore.ctx_probe ctx) (function
    | Probe.Race_signal { node; offset; len; _ } ->
        c.granules <- (node, offset, len) :: c.granules
    | Probe.Detector_check _ -> c.checks <- c.checks + 1
    | Probe.Msg_sent _ -> c.msgs <- c.msgs + 1
    | Probe.Batch_flush _ -> c.flushes <- c.flushes + 1
    | _ -> ());
  c

let reset_collector c =
  c.granules <- [];
  c.checks <- 0;
  c.msgs <- 0;
  c.flushes <- 0

let granule_set c = List.sort_uniq compare c.granules

(* 50 explored schedules of the racy neighbour-push workload, batched
   vs unbatched. The workload is put-only and barrier-free, so its
   racy-granule set is independent of the schedule AND of transport
   batching (see [Dsm_workload.Scale]): per walk, both variants must
   report the identical granule set and per-operation check count, while
   the batched variant ships strictly fewer fabric messages and is the
   only one to flush batches. *)
let test_batched_differential () =
  let spec scenario =
    { Explore.default_spec with Explore.scenario; n = 5; seed = 11 }
  in
  let ctx_plain = Explore.create_ctx (spec "workload:scale") in
  let ctx_batched = Explore.create_ctx (spec "workload:scale-batched") in
  let c_plain = attach_collector ctx_plain in
  let c_batched = attach_collector ctx_batched in
  for walk = 0 to 49 do
    reset_collector c_plain;
    reset_collector c_batched;
    let r_plain = Explore.run_once_in ctx_plain (Explore.Walk walk) in
    let r_batched = Explore.run_once_in ctx_batched (Explore.Walk walk) in
    List.iter
      (fun (name, (r : Explore.run_result)) ->
        Alcotest.(check bool)
          (Printf.sprintf "walk %d: %s completed" walk name)
          true
          (r.Explore.outcome = Explore.Completed);
        Alcotest.(check int)
          (Printf.sprintf "walk %d: %s invariants" walk name)
          0
          (List.length r.Explore.violations))
      [ ("plain", r_plain); ("batched", r_batched) ];
    Alcotest.(check int)
      (Printf.sprintf "walk %d: race count" walk)
      r_plain.Explore.races r_batched.Explore.races;
    Alcotest.(check bool)
      (Printf.sprintf "walk %d: racy granule set" walk)
      true
      (granule_set c_plain = granule_set c_batched);
    Alcotest.(check bool)
      (Printf.sprintf "walk %d: granules observed" walk)
      true
      (granule_set c_plain <> []);
    Alcotest.(check int)
      (Printf.sprintf "walk %d: per-op check count" walk)
      c_plain.checks c_batched.checks;
    Alcotest.(check bool)
      (Printf.sprintf "walk %d: batching coalesced messages (%d < %d)"
         walk c_batched.msgs c_plain.msgs)
      true
      (c_batched.msgs < c_plain.msgs);
    Alcotest.(check bool)
      (Printf.sprintf "walk %d: batch flushes only when batched" walk)
      true
      (c_batched.flushes > 0 && c_plain.flushes = 0)
  done

let () =
  Alcotest.run "conformance"
    [
      ( "clock-reps",
        [
          Alcotest.test_case "directed seeds (n=4)" `Quick
            test_conformance_directed;
          Alcotest.test_case "promotion boundary (n=16)" `Slow
            test_conformance_promotion;
          QCheck_alcotest.to_alcotest prop_conformant_small;
          QCheck_alcotest.to_alcotest prop_conformant_wide;
        ] );
      ( "batched-coherence",
        [
          Alcotest.test_case "batched = unbatched race sets (50 walks)"
            `Slow test_batched_differential;
        ] );
    ]
