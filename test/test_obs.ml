(* The live-telemetry layer: metrics-registry semantics (counters,
   log-bucket histograms, in-place reset, order-insensitive merge), the
   Perfetto exporter's structural contract on a figure scenario, and the
   sink-invariance property that keeps telemetry read-only with respect
   to the simulation. *)

module Probe = Dsm_obs.Probe
module Metrics = Dsm_obs.Metrics
module Meter = Dsm_obs.Meter
module Timeline = Dsm_obs.Timeline
module Trace_json = Dsm_obs.Trace_json
module Machine = Dsm_rdma.Machine
module Explore = Dsm_explore.Explore
module Parallel = Dsm_explore.Parallel
module Fault = Dsm_net.Fault

(* ---------- metrics: counters ---------- *)

let test_counter_semantics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a.count" in
  Alcotest.(check int) "fresh" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr+add" 5 (Metrics.value c);
  (* find-or-create returns the same instrument *)
  let c' = Metrics.counter r "a.count" in
  Metrics.incr c';
  Alcotest.(check int) "same instrument" 6 (Metrics.value c);
  Alcotest.(check string) "name" "a.count" (Metrics.counter_name c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () ->
      Metrics.add c (-1))

let test_histogram_semantics () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "lat" in
  List.iter (Metrics.observe h) [ 0; 1; 5; 5; 100 ];
  let snap = Metrics.snapshot r in
  match snap.Metrics.histograms with
  | [ ("lat", s) ] ->
      Alcotest.(check int) "count" 5 s.Metrics.count;
      Alcotest.(check int) "sum" 111 s.Metrics.sum;
      Alcotest.(check int) "min" 0 s.Metrics.min;
      Alcotest.(check int) "max" 100 s.Metrics.max;
      (* 0 -> bucket 0; 1 -> [1,2); 5,5 -> [4,8); 100 -> [64,128) *)
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (0, 1); (1, 1); (4, 2); (64, 1) ]
        s.Metrics.bucket_counts;
      Alcotest.(check (float 0.01)) "mean" 22.2 (Metrics.mean s)
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_reset_in_place () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  let h = Metrics.histogram r "h" in
  Metrics.add c 7;
  Metrics.observe h 3;
  Metrics.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.value c);
  let snap = Metrics.snapshot r in
  (match snap.Metrics.histograms with
  | [ ("h", s) ] ->
      Alcotest.(check int) "histogram zeroed" 0 s.Metrics.count;
      Alcotest.(check (list (pair int int))) "no buckets" [] s.Metrics.bucket_counts
  | _ -> Alcotest.fail "histogram instrument lost by reset");
  (* handles stay valid: the same instruments keep counting *)
  Metrics.incr c;
  Metrics.observe h 1;
  Alcotest.(check int) "counter alive" 1 (Metrics.value c)

let test_merge_order_insensitive () =
  let mk specs =
    let r = Metrics.create () in
    List.iter
      (fun (name, v) ->
        if v >= 0 then Metrics.add (Metrics.counter r name) v
        else Metrics.observe (Metrics.histogram r name) (-v))
      specs;
    r
  in
  let parts () =
    [
      mk [ ("runs", 3); ("lat", -5); ("steps", 10) ];
      mk [ ("runs", 2); ("lat", -9) ];
      mk [ ("violations", 1); ("lat", -1); ("steps", 4) ];
    ]
  in
  let merge order =
    let into = Metrics.create () in
    List.iter (fun src -> Metrics.merge_into ~into src) order;
    Metrics.to_json_string (Metrics.snapshot into)
  in
  let a = merge (parts ()) in
  let b = merge (List.rev (parts ())) in
  Alcotest.(check string) "merge order" a b;
  (* and the aggregate is the element-wise sum / min / max *)
  let into = Metrics.create () in
  List.iter (fun src -> Metrics.merge_into ~into src) (parts ());
  Alcotest.(check int) "summed" 5 (Metrics.value (Metrics.counter into "runs"));
  match (Metrics.snapshot into).Metrics.histograms with
  | [ ("lat", s) ] ->
      Alcotest.(check int) "hist count" 3 s.Metrics.count;
      Alcotest.(check int) "hist min" 1 s.Metrics.min;
      Alcotest.(check int) "hist max" 9 s.Metrics.max
  | _ -> Alcotest.fail "merged histogram lost"

(* ---------- probe bus basics ---------- *)

let test_probe_attach_detach () =
  let bus = Probe.create () in
  Alcotest.(check bool) "silent" false bus.Probe.on;
  let hits = ref 0 in
  Probe.attach bus (fun _ -> incr hits);
  Probe.attach bus (fun _ -> incr hits);
  Alcotest.(check bool) "on" true bus.Probe.on;
  Probe.emit bus (Probe.Engine_step { time = 1.0 });
  Alcotest.(check int) "both sinks" 2 !hits;
  Probe.detach_all bus;
  Alcotest.(check bool) "off again" false bus.Probe.on

(* ---------- Perfetto exporter: golden figure scenario ---------- *)

(* fig5a is deterministic, so the exported timeline's shape is an exact
   number: the structural validator must accept it, every fabric message
   must appear as a matched flow pair, and the race the figure plants
   must surface as a race-signal instant. *)
let run_figure name =
  let sim = Dsm_sim.Engine.create () in
  let m = Machine.create sim ~n:4 () in
  let tl = Timeline.attach (Dsm_sim.Engine.probe sim) in
  (match Dsm_experiments.Figures.build_figure name m with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  (match Machine.run m with
  | Dsm_sim.Engine.Completed -> ()
  | _ -> Alcotest.fail "figure did not complete");
  (m, Timeline.to_json_string tl)

let test_perfetto_golden () =
  let m, doc = run_figure "fig5a" in
  match Trace_json.validate_trace doc with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "flows = messages" (Machine.fabric_messages m)
        s.Trace_json.flows;
      Alcotest.(check int) "lanes" 4 s.Trace_json.lanes;
      Alcotest.(check int) "slices" 26 s.Trace_json.slices;
      Alcotest.(check int) "instants" 4 s.Trace_json.instants;
      Alcotest.(check bool) "race instant" true
        (let rec mem_race = function
           | Trace_json.Obj fields ->
               List.exists (fun (_, v) -> mem_race v) fields
               || List.exists
                    (fun (k, v) -> k = "name" && v = Trace_json.Str "race signal")
                    fields
           | Trace_json.Arr l -> List.exists mem_race l
           | _ -> false
         in
         mem_race (Trace_json.parse doc))

let test_validator_rejects_malformed () =
  List.iter
    (fun (label, doc) ->
      match Trace_json.validate_trace doc with
      | Ok _ -> Alcotest.failf "validator accepted %s" label
      | Error _ -> ())
    [
      ("no traceEvents", {|{"foo": []}|});
      ("slice without dur", {|{"traceEvents":[{"ph":"X","pid":0,"name":"a","ts":1}]}|});
      ( "unmatched flow finish",
        {|{"traceEvents":[{"ph":"f","pid":0,"name":"a","ts":1,"id":9,"bp":"e"}]}|}
      );
      ("trailing garbage", {|{"traceEvents":[]} trailing|});
    ]

(* ---------- sink invariance ---------- *)

(* Attaching a timeline and a meter to a run must not change what the
   run does: same schedule decisions, same fingerprint (which digests
   the outcome, times, detector report, and monitor output). *)
let prop_sink_invariance =
  QCheck.Test.make ~name:"sinks never change a run" ~count:25
    QCheck.(pair (int_bound 500) bool)
    (fun (walk, lossy) ->
      let spec =
        {
          Explore.default_spec with
          Explore.seed = 11;
          faults =
            (if lossy then Fault.of_string "drop=0.1,dup=0.05" else Fault.none);
          reliable = lossy;
        }
      in
      let plain = Explore.run_once spec (Explore.Walk walk) in
      let ctx = Explore.create_ctx ~metrics:(Metrics.create ()) spec in
      ignore (Timeline.attach (Explore.ctx_probe ctx));
      let observed = Explore.run_once_in ctx (Explore.Walk walk) in
      (* and detaching mid-arena restores the silent bus without
         disturbing subsequent runs *)
      Probe.detach_all (Explore.ctx_probe ctx);
      let detached = Explore.run_once_in ctx (Explore.Walk walk) in
      plain.Explore.fingerprint = observed.Explore.fingerprint
      && plain.Explore.decisions = observed.Explore.decisions
      && plain.Explore.races = observed.Explore.races
      && plain.Explore.fingerprint = detached.Explore.fingerprint)

(* ---------- metrics across the explorer ---------- *)

let getput_spec = { Explore.default_spec with Explore.seed = 9 }

let test_arena_metrics_reset_in_place () =
  let reg = Metrics.create () in
  let ctx = Explore.create_ctx ~metrics:reg getput_spec in
  let runs = Metrics.counter reg "explore.runs" in
  ignore (Explore.explore_random_in ~stop_on_first:false ctx ~runs:5);
  (* determinism re-check replays each walk, so >= one run per walk *)
  Alcotest.(check bool) "counted" true (Metrics.value runs >= 5);
  Metrics.reset reg;
  Alcotest.(check int) "reset" 0 (Metrics.value runs);
  ignore (Explore.explore_random_in ~stop_on_first:false ctx ~runs:5);
  Alcotest.(check bool) "counts again" true (Metrics.value runs >= 5)

let test_parallel_merge_matches_sequential () =
  (* stop_on_first off: every walk index is executed exactly once for
     any job count, so the merged aggregate must equal the sequential
     registry exactly — counters and histograms both. *)
  let run jobs =
    let reg = Metrics.create () in
    let stats =
      Parallel.explore_random ~check_determinism:false ~stop_on_first:false
        ~metrics:reg ~jobs getput_spec ~runs:40
    in
    (stats, Metrics.to_json_string (Metrics.snapshot reg))
  in
  let s1, m1 = run 1 in
  let s4, m4 = run 4 in
  Alcotest.(check int) "runs" s1.Explore.runs s4.Explore.runs;
  Alcotest.(check int) "violated" s1.Explore.violated s4.Explore.violated;
  Alcotest.(check string) "metrics identical" m1 m4

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "histogram semantics" `Quick
            test_histogram_semantics;
          Alcotest.test_case "reset in place" `Quick test_reset_in_place;
          Alcotest.test_case "merge order-insensitive" `Quick
            test_merge_order_insensitive;
        ] );
      ( "probe",
        [
          Alcotest.test_case "attach/detach" `Quick test_probe_attach_detach;
          QCheck_alcotest.to_alcotest prop_sink_invariance;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "golden fig5a" `Quick test_perfetto_golden;
          Alcotest.test_case "validator rejects malformed" `Quick
            test_validator_rejects_malformed;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "arena metrics reset" `Quick
            test_arena_metrics_reset_in_place;
          Alcotest.test_case "parallel merge = sequential" `Quick
            test_parallel_merge_matches_sequential;
        ] );
    ]
