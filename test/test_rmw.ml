(* One-sided RMW extensions (§5.2): wire codec round-trip + rejection,
   NIC-side apply semantics (exactly-once under duplicate delivery),
   detection marking (an RMW is atomically a read and a write; a failed
   CAS only a read), the serial-specification oracle over explored
   schedules, and schedule-independence of the new workloads' racy
   granule sets. *)

open Dsm_sim
open Dsm_memory
module Machine = Dsm_rdma.Machine
module Message = Dsm_rdma.Message
module Coherence = Dsm_rdma.Coherence
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Explore = Dsm_explore.Explore
module Linearize = Dsm_explore.Linearize
module Probe = Dsm_obs.Probe
module Metrics = Dsm_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Wire codec: exact round-trip, total rejection of malformed input.   *)
(* ------------------------------------------------------------------ *)

let directed_msgs =
  [
    ( "fetch_add",
      Message.Atomic
        {
          op = 3;
          origin = 1;
          offset = 5;
          kind = Message.Fetch_add (-2);
          extra_words = 0;
        } );
    ( "cas",
      Message.Atomic
        {
          op = 4;
          origin = 2;
          offset = 9;
          kind = Message.Compare_and_swap { expected = 0; desired = -7 };
          extra_words = 3;
        } );
    ( "accumulate",
      Message.Accumulate
        {
          op = 5;
          origin = 1;
          offset = 2;
          aop = Message.Min;
          data = [| 3; -1; 4 |];
          extra_words = 2;
        } );
    ("atomic_reply", Message.Atomic_reply { op = 3; old_value = -9 });
    ( "acc_reply",
      Message.Acc_reply { op = 5; old = [| 1; -2; 3 |]; extra_words = 2 } );
  ]

let test_codec_directed () =
  List.iter
    (fun (name, m) ->
      (match Message.decode_rmw (Message.encode_rmw m) with
      | Ok m' ->
          Alcotest.(check bool) (name ^ ": word round-trip") true (m = m')
      | Error e -> Alcotest.failf "%s words rejected: %s" name e);
      match Message.rmw_of_string (Message.rmw_to_string m) with
      | Ok m' ->
          Alcotest.(check bool) (name ^ ": string round-trip") true (m = m')
      | Error e -> Alcotest.failf "%s string rejected: %s" name e)
    directed_msgs;
  let rejects name buf =
    match Message.decode_rmw buf with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed buffer was accepted" name
  in
  let fa_words = Message.encode_rmw (snd (List.nth directed_msgs 0)) in
  rejects "empty buffer" [||];
  rejects "unknown tag" [| 9; 1; 1; 1; 1; 1 |];
  rejects "truncated fetch_add" (Array.sub fa_words 0 5);
  rejects "padded fetch_add" (Array.append fa_words [| 0 |]);
  rejects "negative op" [| 1; -1; 0; 0; 0; 1 |];
  rejects "negative offset" [| 1; 0; 0; -3; 0; 1 |];
  rejects "negative extra_words" [| 1; 0; 0; 0; -1; 1 |];
  rejects "unknown accumulate op code" [| 3; 1; 0; 0; 0; 9; 1; 5 |];
  rejects "accumulate length mismatch" [| 3; 1; 0; 0; 0; 0; 2; 5 |];
  rejects "negative accumulate length" [| 3; 1; 0; 0; 0; 0; -1 |];
  let rejects_s name s =
    match Message.rmw_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed string was accepted" name
  in
  rejects_s "garbage form" "zz|1|2";
  rejects_s "bad integer" "fa|1|x|0|0|1";
  rejects_s "negative framing field" "fa|-1|0|0|0|1";
  rejects_s "unknown acc op name" "acc|1|0|0|0|mul|1,2";
  rejects_s "empty string" "";
  match Message.encode_rmw (Message.Put_ack { op = 1 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode_rmw accepted a non-RMW message"

let gen_rmw =
  QCheck.Gen.(
    let value = int_range (-4096) 4096 in
    let data = array_size (int_range 1 5) value in
    quad (int_range 0 999) (int_range 0 31) (int_range 0 1023)
      (int_range 0 64)
    >>= fun (op, origin, offset, extra_words) ->
    oneof
      [
        ( value >|= fun d ->
          Message.Atomic
            { op; origin; offset; kind = Message.Fetch_add d; extra_words }
        );
        ( pair value value >|= fun (expected, desired) ->
          Message.Atomic
            {
              op;
              origin;
              offset;
              kind = Message.Compare_and_swap { expected; desired };
              extra_words;
            } );
        ( pair
            (oneofl [ Message.Add; Min; Max; Band; Bor ])
            data
        >|= fun (aop, data) ->
          Message.Accumulate { op; origin; offset; aop; data; extra_words }
        );
        (value >|= fun old_value -> Message.Atomic_reply { op; old_value });
        (data >|= fun old -> Message.Acc_reply { op; old; extra_words });
      ])

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"RMW codec round-trips exactly (words and string)"
    ~count:500
    (QCheck.make ~print:Message.rmw_to_string gen_rmw)
    (fun m ->
      Message.decode_rmw (Message.encode_rmw m) = Ok m
      && Message.rmw_of_string (Message.rmw_to_string m) = Ok m)

(* ------------------------------------------------------------------ *)
(* NIC-side apply: accumulate semantics, exactly-once under faults.    *)
(* ------------------------------------------------------------------ *)

let test_accumulate_span () =
  let sim = Engine.create ~seed:7 () in
  let m = Machine.create sim ~n:2 () in
  let checker = Coherence.attach m in
  let lin = Linearize.attach m in
  let dst = Machine.alloc_public m ~pid:1 ~name:"span" ~len:4 () in
  Node_memory.write (Machine.node m 1) dst [| 5; -2; 12; 6 |];
  let src = Machine.alloc_private m ~pid:0 ~name:"ops" ~len:4 () in
  Node_memory.write (Machine.node m 0) src [| 3; 3; 3; 3 |];
  Machine.spawn m ~pid:0 (fun p ->
      let old = Machine.accumulate p ~src ~dst ~aop:Message.Min () in
      Alcotest.(check (array int))
        "min returns the prior span" [| 5; -2; 12; 6 |] old;
      let old = Machine.accumulate p ~src ~dst ~aop:Message.Max () in
      Alcotest.(check (array int))
        "max sees min's result" [| 3; -2; 3; 3 |] old;
      let old = Machine.accumulate p ~src ~dst ~aop:Message.Bor () in
      Alcotest.(check (array int))
        "bor sees max's result" [| 3; 3; 3; 3 |] old;
      let old = Machine.accumulate p ~src ~dst ~aop:Message.Band () in
      Alcotest.(check (array int))
        "band sees bor's result" [| 3; 3; 3; 3 |] old;
      let old = Machine.accumulate p ~src ~dst () in
      Alcotest.(check (array int))
        "add (default) sees band's result" [| 3; 3; 3; 3 |] old);
  (match Machine.run m with
  | Engine.Completed -> ()
  | _ -> Alcotest.fail "accumulate run did not complete");
  Alcotest.(check (array int))
    "final span: add landed last" [| 6; 6; 6; 6 |]
    (Node_memory.read (Machine.node m 1) dst);
  Alcotest.(check int)
    "coherent" 0
    (List.length (Coherence.violations checker));
  Alcotest.(check bool) "oracle clean" true (Linearize.is_clean lin)

(* Duplicate- and drop-injected fabric under the reliable transport:
   every RMW must be applied at the target exactly once (the receiver
   dedups retransmitted frames), so the counter sums exactly and the
   serial-replay oracle stays clean. *)
let test_rmw_duplicate_delivery_exactly_once () =
  let sim = Engine.create ~seed:3 () in
  let m =
    Machine.create sim ~n:3
      ~latency:(Dsm_net.Latency.Constant 2.0)
      ~faults:(Dsm_net.Fault.of_string "dup=0.4,drop=0.2")
      ~reliability:(Machine.reliability ())
      ()
  in
  let lin = Linearize.attach m in
  let counter = Machine.alloc_public m ~pid:0 ~name:"C" ~len:1 () in
  let target =
    Addr.global ~pid:0 ~space:Addr.Public ~offset:counter.Addr.base.offset
  in
  let applies = ref 0 in
  Machine.add_observer m (function
    | Machine.Atomic_applied { node = 0; _ } -> incr applies
    | _ -> ());
  let per = 5 in
  for pid = 1 to 2 do
    Machine.spawn m ~pid (fun p ->
        for _ = 1 to per do
          ignore (Machine.fetch_add p ~target ~delta:1 ())
        done)
  done;
  (match Machine.run m with
  | Engine.Completed -> ()
  | _ -> Alcotest.fail "faulted run did not complete");
  Alcotest.(check bool)
    "the plan actually forced retransmits" true
    (Machine.transport_retransmits m > 0);
  Alcotest.(check int) "each RMW applied exactly once" (2 * per) !applies;
  Alcotest.(check int)
    "counter sums exactly" (2 * per)
    (Node_memory.read (Machine.node m 0) counter).(0);
  Alcotest.(check bool) "oracle clean" true (Linearize.is_clean lin)

(* ------------------------------------------------------------------ *)
(* Detection marking: RMW = read + write under one lock hold; a failed *)
(* CAS is read-only.                                                   *)
(* ------------------------------------------------------------------ *)

(* Two unsynchronized processes: pid 0 runs one CAS against a word of
   node 1's public segment, pid 1 runs [second] on the same word. *)
let cas_pair ~expected ~second =
  let sim = Engine.create ~seed:5 () in
  let m = Machine.create sim ~n:2 () in
  let d =
    Detector.create m
      ~config:{ Config.default with Config.granularity = Config.Word }
      ()
  in
  let var = Machine.alloc_public m ~pid:1 ~name:"x" ~len:1 () in
  let target =
    Addr.global ~pid:1 ~space:Addr.Public ~offset:var.Addr.base.offset
  in
  Machine.spawn m ~pid:0 (fun p ->
      ignore (Detector.cas d p ~target ~expected ~desired:9));
  Machine.spawn m ~pid:1 (fun p ->
      let buf = Machine.alloc_private m ~pid:1 ~len:1 () in
      second d p ~var ~buf);
  (match Machine.run m with
  | Engine.Completed -> ()
  | _ -> Alcotest.fail "cas pair did not complete");
  Report.count (Detector.report d)

let plain_read d p ~var ~buf = Detector.get d p ~src:var ~dst:buf
let plain_write d p ~var ~buf = Detector.put d p ~src:buf ~dst:var

(* The word starts at 0, so expected:7 fails and expected:0 swaps. *)
let test_failed_cas_is_read_only () =
  Alcotest.(check int)
    "failed CAS vs concurrent plain read: silent" 0
    (cas_pair ~expected:7 ~second:plain_read);
  Alcotest.(check bool)
    "failed CAS vs concurrent plain write: race" true
    (cas_pair ~expected:7 ~second:plain_write > 0)

let test_successful_cas_write_marks () =
  Alcotest.(check bool)
    "successful CAS vs concurrent plain read: race" true
    (cas_pair ~expected:0 ~second:plain_read > 0);
  Alcotest.(check bool)
    "successful CAS vs concurrent plain write: race" true
    (cas_pair ~expected:0 ~second:plain_write > 0)

(* two unsynchronized fetch_adds on the same word: the target NIC
   serializes them under the region lock and the S clock orders the
   pair, so the detector must stay silent *)
let test_rmw_rmw_serialized () =
  let sim = Engine.create ~seed:6 () in
  let m = Machine.create sim ~n:2 () in
  let d =
    Detector.create m
      ~config:{ Config.default with Config.granularity = Config.Word }
      ()
  in
  let var = Machine.alloc_public m ~pid:1 ~name:"x" ~len:1 () in
  let target =
    Addr.global ~pid:1 ~space:Addr.Public ~offset:var.Addr.base.offset
  in
  for pid = 0 to 1 do
    Machine.spawn m ~pid (fun p ->
        ignore (Detector.fetch_add d p ~target ~delta:1))
  done;
  (match Machine.run m with
  | Engine.Completed -> ()
  | _ -> Alcotest.fail "fetch_add pair did not complete");
  Alcotest.(check int)
    "RMW vs RMW: serialized, silent" 0
    (Report.count (Detector.report d))

(* ------------------------------------------------------------------ *)
(* Serial-specification oracle over explored schedules.                *)
(* ------------------------------------------------------------------ *)

(* Random put/get/fetch_add/CAS programs: on every schedule of the
   bounded DFS, RMW return values must match the SC oracle's serial
   replay and the final heap must equal the replayed heap (the
   ["rmw-linearizability"] and ["rmw-heap"] invariants both hold). *)
let prop_rmw_mix_linearizable =
  QCheck.Test.make
    ~name:"rmw-mix matches the serial oracle on every schedule (depth 8)"
    ~count:15
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let spec =
        {
          Explore.default_spec with
          Explore.scenario = "workload:rmw-mix";
          n = 2;
          seed;
          latency = Dsm_net.Latency.Constant 1.0;
        }
      in
      let stats = Explore.explore_exhaustive spec ~depth:8 ~max_runs:300 in
      stats.Explore.runs > 0 && stats.Explore.violated = 0)

(* The planted [Skip_rmw_write_mark] bug defers an RMW's write half to a
   delay-0 event; on the rmwlost scenario a tied delivery reads the span
   inside that window and the oracle must fail loudly. *)
let test_planted_rmw_bug_found () =
  let spec =
    {
      Explore.default_spec with
      Explore.scenario = "rmwlost";
      n = 3;
      latency = Dsm_net.Latency.Constant 1.0;
      bug = true;
    }
  in
  let stats = Explore.explore_exhaustive spec ~depth:6 ~max_runs:200 in
  Alcotest.(check bool)
    "a schedule violates" true
    (stats.Explore.violated > 0);
  match stats.Explore.first with
  | None -> Alcotest.fail "no violating run returned"
  | Some (_, r) ->
      Alcotest.(check bool)
        "the oracle names the lost update" true
        (List.exists
           (fun (v : Explore.violation) ->
             v.Explore.invariant = "rmw-linearizability")
           r.Explore.violations)

let test_rmwlost_clean_without_bug () =
  let spec =
    {
      Explore.default_spec with
      Explore.scenario = "rmwlost";
      n = 3;
      latency = Dsm_net.Latency.Constant 1.0;
    }
  in
  let stats = Explore.explore_exhaustive spec ~depth:10 ~max_runs:500 in
  Alcotest.(check bool)
    "the tied tree really branches" true
    (stats.Explore.runs > 1);
  Alcotest.(check int) "every schedule clean" 0 stats.Explore.violated

(* ------------------------------------------------------------------ *)
(* Schedule independence of the new workloads' racy granule sets.      *)
(* ------------------------------------------------------------------ *)

let attach_granules ctx =
  let granules = ref [] in
  Probe.attach (Explore.ctx_probe ctx) (function
    | Probe.Race_signal { node; offset; len; _ } ->
        granules := (node, offset, len) :: !granules
    | _ -> ());
  granules

let test_racy_sets_schedule_independent () =
  List.iter
    (fun scenario ->
      let spec = { Explore.default_spec with Explore.scenario; n = 2 } in
      let ctx = Explore.create_ctx spec in
      let granules = attach_granules ctx in
      let sets =
        List.init 20 (fun walk ->
            granules := [];
            let r = Explore.run_once_in ctx (Explore.Walk walk) in
            Alcotest.(check int)
              (Printf.sprintf "%s walk %d: invariants" scenario walk)
              0
              (List.length r.Explore.violations);
            List.sort_uniq compare !granules)
      in
      match sets with
      | first :: rest ->
          Alcotest.(check bool)
            (scenario ^ ": racy granules observed")
            true (first <> []);
          List.iteri
            (fun i s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s walk %d: same racy granule set" scenario
                   (i + 1))
                true (s = first))
            rest
      | [] -> assert false)
    [
      "workload:histogram-racy"; "workload:deque-racy";
      "workload:allreduce-racy";
    ]

(* Race-free variants: clean on every schedule of the depth-10 bounded
   DFS — no race signal, no invariant violation. *)
let test_race_free_clean_at_depth_10 () =
  List.iter
    (fun scenario ->
      let registry = Metrics.create () in
      let spec = { Explore.default_spec with Explore.scenario; n = 2 } in
      let ctx = Explore.create_ctx ~metrics:registry spec in
      let stats = Explore.explore_exhaustive_in ctx ~depth:10 ~max_runs:500 in
      Alcotest.(check int) (scenario ^ ": no violations") 0
        stats.Explore.violated;
      Alcotest.(check int)
        (scenario ^ ": no race signals")
        0
        (Metrics.value (Metrics.counter registry "detector.race_signal")))
    [ "workload:histogram"; "workload:deque"; "workload:allreduce" ]

(* The merged race count is bit-identical across worker counts and
   claim-chunk sizes — parallelism only changes wall-clock time. *)
let test_race_count_jobs_chunk_invariant () =
  let spec =
    {
      Explore.default_spec with
      Explore.scenario = "workload:deque-racy";
      n = 2;
    }
  in
  let count ~jobs ~chunk =
    let registry = Metrics.create () in
    let stats =
      Dsm_explore.Parallel.explore_random ~jobs ~chunk ~metrics:registry spec
        ~runs:24
    in
    Alcotest.(check int) "no violations" 0 stats.Explore.violated;
    Metrics.value (Metrics.counter registry "detector.race_signal")
  in
  let base = count ~jobs:1 ~chunk:64 in
  Alcotest.(check bool) "races observed" true (base > 0);
  Alcotest.(check int) "jobs 2 identical" base (count ~jobs:2 ~chunk:64);
  Alcotest.(check int) "chunk 1 identical" base (count ~jobs:2 ~chunk:1)

(* ---------- registration ---------- *)

let () =
  Alcotest.run "rmw"
    [
      ( "codec",
        [
          Alcotest.test_case "directed round-trips + rejection" `Quick
            test_codec_directed;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
      ( "machine",
        [
          Alcotest.test_case "accumulate span semantics" `Quick
            test_accumulate_span;
          Alcotest.test_case "duplicate delivery applies exactly once"
            `Quick test_rmw_duplicate_delivery_exactly_once;
        ] );
      ( "detection",
        [
          Alcotest.test_case "failed CAS is read-only" `Quick
            test_failed_cas_is_read_only;
          Alcotest.test_case "successful CAS write-marks" `Quick
            test_successful_cas_write_marks;
          Alcotest.test_case "RMW vs RMW serialized" `Quick
            test_rmw_rmw_serialized;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_rmw_mix_linearizable;
          Alcotest.test_case "planted Skip_rmw_write_mark found" `Quick
            test_planted_rmw_bug_found;
          Alcotest.test_case "rmwlost clean without the bug" `Quick
            test_rmwlost_clean_without_bug;
        ] );
      ( "schedule-independence",
        [
          Alcotest.test_case "racy granule sets identical across walks"
            `Slow test_racy_sets_schedule_independent;
          Alcotest.test_case "race-free variants clean at depth 10" `Slow
            test_race_free_clean_at_depth_10;
          Alcotest.test_case "race count invariant under jobs/chunk" `Quick
            test_race_count_jobs_chunk_invariant;
        ] );
    ]
