(* ISSUE 9: the explanation pipeline — flight-recorder ring semantics
   (bounded, O(1), arena-reset-aware), fingerprint invariance of the
   attached recorder, and the determinism + both-endpoints guarantees of
   the token-driven race explanations. *)

module Probe = Dsm_obs.Probe
module Flight = Dsm_obs.Flight
module Explain = Dsm_obs.Explain
module Explore = Dsm_explore.Explore
module Explain_run = Dsm_explore.Explain_run
module Parallel = Dsm_explore.Parallel
module Token = Dsm_explore.Token

let step i = Probe.Engine_step { time = float_of_int i }

(* ---------- ring semantics ---------- *)

(* record every class: the default exclude would drop Engine_step *)
let fresh ?(capacity = 4) () = Flight.create ~capacity ~exclude:[] ()

let test_ring_capacity_one () =
  let f = fresh ~capacity:1 () in
  for i = 1 to 5 do
    Flight.record f (step i)
  done;
  Alcotest.(check int) "length" 1 (Flight.length f);
  Alcotest.(check int) "total" 5 (Flight.total f);
  Alcotest.(check int) "dropped" 4 (Flight.dropped f);
  match Flight.nth_oldest f 0 with
  | Probe.Engine_step { time } ->
      Alcotest.(check (float 0.0)) "keeps only the newest" 5.0 time
  | _ -> Alcotest.fail "unexpected event class"

let test_ring_wraparound () =
  let f = fresh ~capacity:4 () in
  for i = 1 to 10 do
    Flight.record f (step i)
  done;
  Alcotest.(check int) "length" 4 (Flight.length f);
  Alcotest.(check int) "dropped" 6 (Flight.dropped f);
  let got =
    List.map
      (function
        | seq, Probe.Engine_step { time } -> (seq, int_of_float time)
        | _ -> Alcotest.fail "unexpected event class")
      (Flight.to_list f)
  in
  (* global sequence numbers survive the wrap; events oldest first *)
  Alcotest.(check (list (pair int int)))
    "last four, oldest first, with global seq"
    [ (6, 7); (7, 8); (8, 9); (9, 10) ]
    got

let test_ring_capacity_zero_rejected () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Flight.create: capacity must be >= 1") (fun () ->
      ignore (Flight.create ~capacity:0 ()))

let test_ring_filter () =
  let f = Flight.create ~capacity:8 () (* default exclude: engine.step *) in
  Flight.record f (step 1);
  Flight.record f
    (Probe.Engine_quiescence { time = 2.0; events = 1; outcome = "completed" });
  Alcotest.(check int) "engine.step filtered" 1 (Flight.length f);
  Alcotest.(check int) "filtered events don't count" 1 (Flight.total f)

(* The explorer emits Run_begin at the top of every run in a (possibly
   reused) arena: the window must cover exactly the current run, so two
   identical runs in the same arena leave identical windows. *)
let test_ring_resets_across_arena_runs () =
  let spec = { Explore.default_spec with Explore.seed = 3 } in
  let ctx = Explore.create_ctx spec in
  let f = Flight.attach ~capacity:1024 (Explore.ctx_probe ctx) in
  ignore (Explore.run_once_in ctx (Explore.Walk 1));
  let first = Flight.events f in
  let first_total = Flight.total f in
  ignore (Explore.run_once_in ctx (Explore.Walk 1));
  Alcotest.(check bool) "first run recorded something" true (first <> []);
  Alcotest.(check int) "window covers one run, not two" first_total
    (Flight.total f);
  Alcotest.(check bool) "identical run, identical window" true
    (Flight.events f = first);
  Probe.detach_all (Explore.ctx_probe ctx)

(* ---------- fingerprint invariance ---------- *)

(* A recorder is a passive sink: attaching one must not change the
   schedule, the fingerprint, or the race verdicts of any run. *)
let prop_flight_fingerprint_invariance =
  QCheck.Test.make ~name:"flight recorder never changes a run" ~count:25
    QCheck.(pair (int_bound 500) (int_bound 2))
    (fun (walk, cap_sel) ->
      let spec = { Explore.default_spec with Explore.seed = 7 } in
      let plain = Explore.run_once spec (Explore.Walk walk) in
      let ctx = Explore.create_ctx spec in
      let capacity = [| 1; 8; 512 |].(cap_sel) in
      ignore (Flight.attach ~capacity (Explore.ctx_probe ctx));
      let recorded = Explore.run_once_in ctx (Explore.Walk walk) in
      Probe.detach_all (Explore.ctx_probe ctx);
      plain.Explore.fingerprint = recorded.Explore.fingerprint
      && plain.Explore.decisions = recorded.Explore.decisions
      && plain.Explore.races = recorded.Explore.races)

(* ---------- explanations: planted get/put bug ---------- *)

let checked_spec =
  {
    Explore.default_spec with
    Explore.scenario = "getput-checked";
    latency = Dsm_net.Latency.Constant 1.0;
    bug = true;
  }

let explain_ok token =
  match Explain_run.of_token token with
  | Ok o -> o
  | Error msg -> Alcotest.fail ("explanation replay failed: " ^ msg)

let test_getput_checked_names_both_endpoints () =
  let r = Explore.run_once checked_spec (Explore.Script []) in
  Alcotest.(check bool) "the planted bug violates" true
    (r.Explore.violations <> []);
  let token = Explore.token_of checked_spec r.Explore.decisions in
  let o = explain_ok token in
  Alcotest.(check bool) "has explanations" true (o.Explain_run.explanations <> []);
  List.iter
    (fun (e : Explain.t) ->
      Alcotest.(check string) "cause" "race" e.Explain.cause;
      Alcotest.(check int) "granule node" 0 e.Explain.node;
      (match e.Explain.prior with
      | None -> Alcotest.fail "explanation must name the prior endpoint"
      | Some prior ->
          Alcotest.(check bool) "two distinct processes" true
            (prior.Explain.pid <> e.Explain.flagged.Explain.pid);
          Alcotest.(check bool) "prior clock snapshot kept" true
            (Array.length prior.Explain.clock > 0));
      (* Lemma 1: a race signal means incomparable clocks — both
         directions must be witnessed by concrete components *)
      Alcotest.(check bool) "accessor ahead somewhere" true
        (e.Explain.ahead_count > 0);
      Alcotest.(check bool) "accessor behind somewhere" true
        (e.Explain.behind_count > 0);
      (* a concrete missing-sync witness: either the last sync edge that
         failed to order the endpoints, or an explicit absence *)
      (match e.Explain.sync_edge with
      | Some _ -> ()
      | None ->
          Alcotest.(check bool) "window was recorded" true
            (e.Explain.window_events > 0));
      let text = Explain.to_text e in
      Alcotest.(check bool) "text names P0" true
        (Test_util.contains text "P0");
      Alcotest.(check bool) "text names P1" true
        (Test_util.contains text "P1");
      Alcotest.(check bool) "text shows clocks" true
        (Test_util.contains text "clock ["))
    o.Explain_run.explanations

let test_explanations_deterministic () =
  let r = Explore.run_once checked_spec (Explore.Script []) in
  let token = Explore.token_of checked_spec r.Explore.decisions in
  let a = explain_ok token in
  let b = explain_ok token in
  Alcotest.(check string) "text byte-identical across replays"
    a.Explain_run.text b.Explain_run.text;
  Alcotest.(check string) "json byte-identical across replays"
    a.Explain_run.json b.Explain_run.json;
  (* and the attached recorder is invisible to the run fingerprint *)
  Alcotest.(check string) "fingerprint matches the bare run"
    r.Explore.fingerprint a.Explain_run.result.Explore.fingerprint

(* The parallel driver's first-violation token is bit-identical for
   every jobs/chunk combination, so the explanations are too. *)
let test_explanations_identical_across_jobs_and_chunk () =
  let texts =
    List.map
      (fun (jobs, chunk) ->
        let stats =
          Parallel.explore_random ~check_determinism:false ~jobs ~chunk
            checked_spec ~runs:20
        in
        match stats.Explore.first with
        | None -> Alcotest.fail "expected a violation"
        | Some (_, r) ->
            let decisions = Token.trim_trailing_zeros r.Explore.decisions in
            let token = Explore.token_of checked_spec decisions in
            (explain_ok token).Explain_run.text)
      [ (1, 1); (2, 1); (2, 64); (4, 64) ]
  in
  match texts with
  | first :: rest ->
      List.iteri
        (fun i t ->
          Alcotest.(check string)
            (Printf.sprintf "jobs/chunk combination %d" (i + 1))
            first t)
        rest;
      Alcotest.(check bool) "non-empty" true (first <> "")
  | [] -> Alcotest.fail "no combinations ran"

(* ---------- explanations: race-silent RMW atomicity bug ---------- *)

let rmw_spec =
  {
    Explore.default_spec with
    Explore.scenario = "rmwlost-checked";
    n = 3;
    latency = Dsm_net.Latency.Constant 1.0;
    bug = true;
  }

let test_rmwlost_checked_atomicity_fallback () =
  let stats =
    Explore.explore_random ~check_determinism:false rmw_spec ~runs:100
  in
  match stats.Explore.first with
  | None -> Alcotest.fail "the planted RMW bug never violated"
  | Some (_, r) ->
      let token = Explore.token_of rmw_spec r.Explore.decisions in
      let o = explain_ok token in
      (match o.Explain_run.explanations with
      | [ e ] ->
          Alcotest.(check string) "cause" "atomicity" e.Explain.cause;
          Alcotest.(check string) "against the serial spec" "serial-spec"
            e.Explain.against;
          (match e.Explain.prior with
          | None -> Alcotest.fail "atomicity explanation needs both endpoints"
          | Some prior ->
              Alcotest.(check bool) "two distinct processes" true
                (prior.Explain.pid <> e.Explain.flagged.Explain.pid));
          Alcotest.(check string) "flagged endpoint is an RMW" "atomic"
            e.Explain.flagged.Explain.kind
      | l ->
          Alcotest.fail
            (Printf.sprintf "expected exactly one fallback explanation, got %d"
               (List.length l)))

(* Clean runs produce no explanations — the pipeline stays quiet when
   there is nothing to explain. *)
let test_clean_run_explains_nothing () =
  let spec = { rmw_spec with Explore.bug = false } in
  let r = Explore.run_once spec (Explore.Script []) in
  Alcotest.(check bool) "clean" true (r.Explore.violations = []);
  let o = explain_ok (Explore.token_of spec r.Explore.decisions) in
  Alcotest.(check int) "no explanations" 0
    (List.length o.Explain_run.explanations);
  Alcotest.(check string) "empty text" "" o.Explain_run.text

let () =
  Alcotest.run "explain"
    [
      ( "ring",
        [
          Alcotest.test_case "capacity one" `Quick test_ring_capacity_one;
          Alcotest.test_case "wrap-around" `Quick test_ring_wraparound;
          Alcotest.test_case "capacity zero rejected" `Quick
            test_ring_capacity_zero_rejected;
          Alcotest.test_case "class filter" `Quick test_ring_filter;
          Alcotest.test_case "arena reset" `Quick
            test_ring_resets_across_arena_runs;
          QCheck_alcotest.to_alcotest prop_flight_fingerprint_invariance;
        ] );
      ( "explanations",
        [
          Alcotest.test_case "both endpoints named" `Quick
            test_getput_checked_names_both_endpoints;
          Alcotest.test_case "deterministic" `Quick
            test_explanations_deterministic;
          Alcotest.test_case "jobs x chunk identical" `Quick
            test_explanations_identical_across_jobs_and_chunk;
          Alcotest.test_case "atomicity fallback" `Quick
            test_rmwlost_checked_atomicity_fallback;
          Alcotest.test_case "clean run silent" `Quick
            test_clean_run_explains_nothing;
        ] );
    ]
