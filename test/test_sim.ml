(* Tests for dsm_sim: determinism, scheduling order, coroutine semantics. *)

open Dsm_sim

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_int_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done;
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_prng_int_in () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Prng.int_in g ~lo:(-3) ~hi:3 in
    Alcotest.(check bool) "in range" true (x >= -3 && x <= 3)
  done

let test_prng_float_bounds () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 2.5)
  done

let test_prng_split_independent () =
  let g = Prng.create ~seed:3 in
  let h = Prng.split g in
  let xs = List.init 10 (fun _ -> Prng.next_int64 g) in
  let ys = List.init 10 (fun _ -> Prng.next_int64 h) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_shuffle_is_permutation () =
  let g = Prng.create ~seed:5 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_bernoulli_extremes () =
  let g = Prng.create ~seed:9 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1" true (Prng.bernoulli g ~p:1.0);
    Alcotest.(check bool) "p=0" false (Prng.bernoulli g ~p:0.0)
  done

let test_prng_exponential_positive () =
  let g = Prng.create ~seed:13 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential g ~mean:2.0 > 0.)
  done

(* ---------- Heap ---------- *)

let test_heap_orders_by_time () =
  let h = Heap.create () in
  Heap.add h ~time:3. ~seq:0 "c";
  Heap.add h ~time:1. ~seq:1 "a";
  Heap.add h ~time:2. ~seq:2 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> "EMPTY"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_ties_by_seq () =
  let h = Heap.create () in
  Heap.add h ~time:1. ~seq:5 "second";
  Heap.add h ~time:1. ~seq:2 "first";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> "EMPTY"
  in
  let first = pop () in
  let second = pop () in
  Alcotest.(check (list string)) "fifo at same time" [ "first"; "second" ]
    [ first; second ]

let test_heap_stress_sorted_drain () =
  let h = Heap.create () in
  let g = Prng.create ~seed:17 in
  for i = 0 to 999 do
    Heap.add h ~time:(Prng.float g 100.) ~seq:i i
  done;
  let last = ref neg_infinity in
  let ok = ref true in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (t, _, _) ->
        if t < !last then ok := false;
        last := t;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "drained in order" true !ok;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

(* ---------- Engine ---------- *)

let test_engine_time_order () =
  let sim = Engine.create () in
  let log = ref [] in
  Engine.schedule sim ~delay:2.0 (fun () -> log := "late" :: !log);
  Engine.schedule sim ~delay:1.0 (fun () -> log := "early" :: !log);
  let outcome = Engine.run sim in
  Alcotest.(check bool) "completed" true (outcome = Engine.Completed);
  Alcotest.(check (list string)) "order" [ "early"; "late" ] (List.rev !log)

let test_engine_now_advances () =
  let sim = Engine.create () in
  let seen = ref 0. in
  Engine.schedule sim ~delay:5.5 (fun () -> seen := Engine.now sim);
  ignore (Engine.run sim);
  Alcotest.(check (float 1e-9)) "time at event" 5.5 !seen

let test_engine_spawn_sleep () =
  let sim = Engine.create () in
  let wake = ref 0. in
  Engine.spawn sim (fun () ->
      Engine.sleep sim 3.0;
      wake := Engine.now sim);
  let outcome = Engine.run sim in
  Alcotest.(check bool) "completed" true (outcome = Engine.Completed);
  Alcotest.(check (float 1e-9)) "woke at 3" 3.0 !wake

let test_engine_yield_interleaves () =
  let sim = Engine.create () in
  let log = ref [] in
  let proc name =
    Engine.spawn sim (fun () ->
        log := (name ^ "1") :: !log;
        Engine.yield sim;
        log := (name ^ "2") :: !log)
  in
  proc "a";
  proc "b";
  ignore (Engine.run sim);
  Alcotest.(check (list string)) "interleaved" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let test_engine_blocked_detection () =
  let sim = Engine.create () in
  let iv : unit Ivar.t = Ivar.create () in
  Engine.spawn sim (fun () -> Ivar.read sim iv);
  let outcome = Engine.run sim in
  Alcotest.(check bool) "blocked 1" true (outcome = Engine.Blocked 1)

let test_engine_process_failure () =
  let sim = Engine.create () in
  Engine.spawn sim ~name:"boom" (fun () -> failwith "kaboom");
  Alcotest.check_raises "wrapped"
    (Engine.Process_failure ("boom", Failure "kaboom")) (fun () ->
      ignore (Engine.run sim))

(* A process that raises after resuming from an await must not wedge the
   heap or the lock table: waiters granted by the same release still run,
   and a second [run] on the same engine drains cleanly instead of
   deadlocking. *)
let test_engine_failure_spares_siblings () =
  let module L = Dsm_memory.Lock_table in
  let sim = Engine.create () in
  let locks = L.create () in
  let survivor_done = ref false in
  Engine.spawn sim ~name:"holder" (fun () ->
      let held = ref None in
      L.acquire locks ~offset:0 ~len:10 (fun l -> held := Some l);
      Engine.sleep sim 5.0;
      match !held with
      | Some l -> L.release locks l
      | None -> Alcotest.fail "holder never granted");
  (* queued behind holder; granted at t=5, then blows up *)
  Engine.spawn sim ~at:1.0 ~name:"crasher" (fun () ->
      let got = Ivar.create () in
      L.acquire locks ~offset:0 ~len:2 (fun l -> Ivar.fill sim got l);
      let l = Ivar.read sim got in
      L.release locks l;
      failwith "crash mid-run");
  (* disjoint range, but also queued behind holder's [0,10) *)
  Engine.spawn sim ~at:2.0 ~name:"survivor" (fun () ->
      let got = Ivar.create () in
      L.acquire locks ~offset:5 ~len:2 (fun l -> Ivar.fill sim got l);
      let l = Ivar.read sim got in
      Engine.sleep sim 1.0;
      L.release locks l;
      survivor_done := true);
  (match Engine.run sim with
  | exception Engine.Process_failure (name, Failure _) ->
      Alcotest.(check string) "crasher failed" "crasher" name
  | _ -> Alcotest.fail "expected crasher's Process_failure");
  (* same engine, same heap: the leftover events must still drain *)
  Alcotest.(check bool) "second run completes" true
    (Engine.run sim = Engine.Completed);
  Alcotest.(check bool) "survivor finished" true !survivor_done;
  Alcotest.(check int) "no held locks" 0 (L.held_count locks);
  Alcotest.(check int) "no queued locks" 0 (L.queued_count locks)

let test_engine_event_limit () =
  let sim = Engine.create () in
  let rec forever () =
    Engine.sleep sim 1.0;
    forever ()
  in
  Engine.spawn sim forever;
  let outcome = Engine.run ~max_events:10 sim in
  Alcotest.(check bool) "limited" true (outcome = Engine.Event_limit_reached)

let test_engine_until_horizon () =
  let sim = Engine.create () in
  let count = ref 0 in
  let rec tickloop () =
    Engine.sleep sim 1.0;
    incr count;
    tickloop ()
  in
  Engine.spawn sim tickloop;
  let outcome = Engine.run ~until:5.5 sim in
  Alcotest.(check bool) "horizon" true (outcome = Engine.Time_limit_reached);
  Alcotest.(check int) "five wakes" 5 !count

let test_engine_stop () =
  let sim = Engine.create () in
  let after_stop = ref false in
  Engine.schedule sim ~delay:1.0 (fun () -> Engine.stop sim);
  Engine.schedule sim ~delay:2.0 (fun () -> after_stop := true);
  let outcome = Engine.run sim in
  Alcotest.(check bool) "stopped" true (outcome = Engine.Stopped);
  Alcotest.(check bool) "later event not run" false !after_stop

let test_engine_negative_delay_rejected () =
  let sim = Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule sim ~delay:(-1.0) (fun () -> ()))

let test_engine_deterministic_trace () =
  let run_once () =
    let sim = Engine.create ~seed:99 () in
    let g = Prng.split (Engine.rng sim) in
    let log = ref [] in
    for i = 0 to 20 do
      Engine.schedule sim ~delay:(Prng.float g 10.) (fun () ->
          log := (i, Engine.now sim) :: !log)
    done;
    ignore (Engine.run sim);
    List.rev !log
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "identical traces" true (a = b)

let test_engine_live_processes () =
  let sim = Engine.create () in
  Engine.spawn sim (fun () -> Engine.sleep sim 1.0);
  Engine.spawn sim (fun () -> Engine.sleep sim 2.0);
  Alcotest.(check int) "two live" 2 (Engine.live_processes sim);
  ignore (Engine.run sim);
  Alcotest.(check int) "none live" 0 (Engine.live_processes sim)

let test_engine_nested_spawn () =
  let sim = Engine.create () in
  let log = ref [] in
  Engine.spawn sim (fun () ->
      log := "parent" :: !log;
      Engine.spawn sim (fun () ->
          Engine.sleep sim 1.0;
          log := "child" :: !log);
      Engine.sleep sim 2.0;
      log := "parent-end" :: !log);
  ignore (Engine.run sim);
  Alcotest.(check (list string)) "nesting works"
    [ "parent"; "child"; "parent-end" ]
    (List.rev !log)

let test_engine_schedule_at_past_rejected () =
  let sim = Engine.create () in
  Engine.schedule sim ~delay:5.0 (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
          Engine.schedule_at sim ~at:1.0 (fun () -> ())));
  ignore (Engine.run sim)

let test_engine_counts_events () =
  let sim = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule sim ~delay:1.0 (fun () -> ())
  done;
  ignore (Engine.run sim);
  Alcotest.(check int) "seven events" 7 (Engine.events_processed sim)

let test_engine_sleep_negative_rejected () =
  let sim = Engine.create () in
  Engine.spawn sim (fun () ->
      Alcotest.check_raises "negative"
        (Invalid_argument "Engine.sleep: negative duration") (fun () ->
          Engine.sleep sim (-1.0)));
  ignore (Engine.run sim)

(* ---------- Ivar ---------- *)

let test_ivar_fill_then_read () =
  let sim = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Ivar.fill sim iv 42;
  Engine.spawn sim (fun () -> got := Ivar.read sim iv);
  ignore (Engine.run sim);
  Alcotest.(check int) "read value" 42 !got

let test_ivar_read_then_fill () =
  let sim = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 and fill_time = ref 0. in
  Engine.spawn sim (fun () ->
      got := Ivar.read sim iv;
      fill_time := Engine.now sim);
  Engine.schedule sim ~delay:4.0 (fun () -> Ivar.fill sim iv 7);
  ignore (Engine.run sim);
  Alcotest.(check int) "read value" 7 !got;
  Alcotest.(check (float 1e-9)) "resumed at fill" 4.0 !fill_time

let test_ivar_multiple_waiters_in_order () =
  let sim = Engine.create () in
  let iv = Ivar.create () in
  let log = ref [] in
  let reader name =
    Engine.spawn sim (fun () ->
        ignore (Ivar.read sim iv);
        log := name :: !log)
  in
  reader "a";
  reader "b";
  reader "c";
  Engine.schedule sim ~delay:1.0 (fun () -> Ivar.fill sim iv ());
  ignore (Engine.run sim);
  Alcotest.(check (list string)) "registration order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_ivar_double_fill () =
  let sim = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill sim iv 1;
  Alcotest.check_raises "double" (Failure "Ivar.fill: already filled")
    (fun () -> Ivar.fill sim iv 2)

let test_ivar_peek_waiters () =
  let sim = Engine.create () in
  let iv = Ivar.create () in
  Alcotest.(check (option int)) "empty" None (Ivar.peek iv);
  Alcotest.(check int) "no waiters" 0 (Ivar.waiters iv);
  Engine.spawn sim (fun () -> ignore (Ivar.read sim iv));
  ignore (Engine.run ~max_events:1 sim);
  Alcotest.(check int) "one waiter" 1 (Ivar.waiters iv);
  Ivar.fill sim iv 5;
  Alcotest.(check (option int)) "filled" (Some 5) (Ivar.peek iv);
  ignore (Engine.run sim)

let () =
  Alcotest.run "sim"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in" `Quick test_prng_int_in;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "bernoulli" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "exponential" `Quick test_prng_exponential_positive;
        ] );
      ( "heap",
        [
          Alcotest.test_case "time order" `Quick test_heap_orders_by_time;
          Alcotest.test_case "tie by seq" `Quick test_heap_ties_by_seq;
          Alcotest.test_case "stress drain" `Quick test_heap_stress_sorted_drain;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "now advances" `Quick test_engine_now_advances;
          Alcotest.test_case "spawn+sleep" `Quick test_engine_spawn_sleep;
          Alcotest.test_case "yield interleaves" `Quick test_engine_yield_interleaves;
          Alcotest.test_case "blocked detection" `Quick test_engine_blocked_detection;
          Alcotest.test_case "process failure" `Quick test_engine_process_failure;
          Alcotest.test_case "failure spares siblings" `Quick
            test_engine_failure_spares_siblings;
          Alcotest.test_case "event limit" `Quick test_engine_event_limit;
          Alcotest.test_case "until horizon" `Quick test_engine_until_horizon;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_rejected;
          Alcotest.test_case "deterministic trace" `Quick test_engine_deterministic_trace;
          Alcotest.test_case "live processes" `Quick test_engine_live_processes;
          Alcotest.test_case "nested spawn" `Quick test_engine_nested_spawn;
          Alcotest.test_case "schedule_at past" `Quick test_engine_schedule_at_past_rejected;
          Alcotest.test_case "event count" `Quick test_engine_counts_events;
          Alcotest.test_case "negative sleep" `Quick test_engine_sleep_negative_rejected;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read then fill" `Quick test_ivar_read_then_fill;
          Alcotest.test_case "waiter order" `Quick test_ivar_multiple_waiters_in_order;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "peek/waiters" `Quick test_ivar_peek_waiters;
        ] );
    ]
