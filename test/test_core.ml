(* Tests for dsm_core: the paper's detection algorithm on the figure
   scenarios of §4, the ablations, and equivalence with the offline
   ground truth. *)

open Dsm_sim
open Dsm_memory
open Dsm_core
module Machine = Dsm_rdma.Machine

let make ?(n = 3) ?config ?seed () =
  let sim = Engine.create ?seed () in
  let m =
    Machine.create sim ~n ~latency:(Dsm_net.Latency.Constant 1.0) ()
  in
  let d = Detector.create m ?config () in
  (m, d)

let expect_completed m =
  match Machine.run m with
  | Engine.Completed -> ()
  | Engine.Blocked k -> Alcotest.failf "blocked with %d processes" k
  | _ -> Alcotest.fail "simulation did not complete"

let races d = Report.count (Detector.report d)

(* Write [v] into process [pid]'s fresh private buffer. *)
let private_buf m ~pid v =
  let r = Machine.alloc_private m ~pid ~len:(Array.length v) () in
  Dsm_memory.Node_memory.write (Machine.node m pid) r v;
  r

(* ---------- Figure 5a: two concurrent puts race ---------- *)

let scenario_5a config =
  let m, d = make ~config () in
  let a = Detector.alloc_shared d ~pid:2 ~name:"a" ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:a);
  Machine.spawn m ~pid:1 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:1 [| 2 |]) ~dst:a);
  expect_completed m;
  d

let test_fig5a_concurrent_puts () =
  let d = scenario_5a Config.default in
  Alcotest.(check int) "race detected" 1 (races d)

(* ---------- Figure 5b: causally ordered accesses do not race ---------- *)

let test_fig5b_program_order () =
  let m, d = make () in
  let a = Detector.alloc_shared d ~pid:1 ~name:"a" ~len:1 () in
  Machine.spawn m ~pid:2 (fun p ->
      (* m1: get a; m3: put a — ordered by program order through the
         reader's clock. *)
      let buf = Machine.alloc_private m ~pid:2 ~len:1 () in
      Detector.get d p ~src:a ~dst:buf;
      Detector.put d p ~src:buf ~dst:a);
  expect_completed m;
  Alcotest.(check int) "no race" 0 (races d)

let test_fig5b_cross_process_via_barrier () =
  let m, d = make () in
  let a = Detector.alloc_shared d ~pid:2 ~name:"a" ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 5 |]) ~dst:a;
      (* Model a synchronization point (the PGAS barrier calls this). *)
      Detector.barrier_sync d);
  Machine.spawn m ~pid:1 (fun p ->
      (* Run well after the barrier. *)
      Machine.compute p 100.0;
      let buf = Machine.alloc_private m ~pid:1 ~len:1 () in
      Detector.get d p ~src:a ~dst:buf);
  expect_completed m;
  Alcotest.(check int) "ordered through sync" 0 (races d)

(* ---------- Figure 5c: unrelated message does not order puts ---------- *)

let test_fig5c_intermediary_does_not_order () =
  let m, d = make () in
  let a = Detector.alloc_shared d ~pid:2 ~name:"a" ~len:1 () in
  let c = Detector.alloc_shared d ~pid:0 ~name:"c" ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      (* m1 *)
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:a);
  Machine.spawn m ~pid:1 (fun p ->
      Machine.compute p 10.0;
      (* m2: P1 writes c on P0 — it never READS anything P0 wrote, so no
         causal edge towards P1 is created... *)
      Detector.put d p ~src:(private_buf m ~pid:1 [| 9 |]) ~dst:c;
      (* ...m3: therefore this put is concurrent with m1: race. *)
      Detector.put d p ~src:(private_buf m ~pid:1 [| 2 |]) ~dst:a);
  expect_completed m;
  Alcotest.(check int) "race detected despite m2" 1 (races d)

(* ---------- Figure 4: concurrent reads ---------- *)

let scenario_fig4 config =
  let m, d = make ~config () in
  let a = Detector.alloc_shared d ~pid:0 ~name:"a" ~len:1 () in
  (* Initialize a before any remote access, from P0 itself. *)
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 42 |]) ~dst:a;
      Detector.barrier_sync d);
  let reader pid =
    Machine.spawn m ~pid (fun p ->
        Machine.compute p 50.0;
        let buf = Machine.alloc_private m ~pid ~len:1 () in
        Detector.get d p ~src:a ~dst:buf)
  in
  reader 1;
  reader 2;
  expect_completed m;
  d

let test_fig4_concurrent_reads_no_race_with_w () =
  let d = scenario_fig4 Config.default in
  Alcotest.(check int) "write clock: no false positive" 0 (races d)

let test_fig4_false_positive_without_w () =
  let d = scenario_fig4 { Config.default with Config.use_write_clock = false } in
  Alcotest.(check bool) "single clock flags read/read" true (races d >= 1);
  (* And the signals are against the general-purpose clock. *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "against V" true
        (r.Report.against = Report.General_clock))
    (Report.races (Detector.report d))

(* ---------- write-read race is found even with W ---------- *)

let test_write_read_race_detected () =
  let m, d = make () in
  let a = Detector.alloc_shared d ~pid:2 ~name:"a" ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:a);
  Machine.spawn m ~pid:1 (fun p ->
      Machine.compute p 30.0;
      (* Later in wall time but causally unordered: still a race. *)
      let buf = Machine.alloc_private m ~pid:1 ~len:1 () in
      Detector.get d p ~src:a ~dst:buf);
  expect_completed m;
  Alcotest.(check int) "flagged" 1 (races d)

(* ---------- ablation: transports agree ---------- *)

let test_transports_agree_on_verdicts () =
  let run transport =
    let d =
      scenario_5a { Config.default with Config.transport } in
    races d
  in
  let inline = run Config.Inline in
  let piggy = run Config.Piggyback_txn in
  let explicit = run Config.Explicit_txn in
  Alcotest.(check int) "inline = piggyback" piggy inline;
  Alcotest.(check int) "piggyback = explicit" explicit piggy;
  Alcotest.(check int) "all detect" 1 piggy

let test_explicit_costs_meta_messages () =
  let d =
    scenario_5a { Config.default with Config.transport = Config.Explicit_txn }
  in
  Alcotest.(check bool) "clock control messages flowed" true
    (Detector.meta_messages d > 0);
  let d' = scenario_5a Config.default in
  Alcotest.(check int) "piggyback needs none" 0 (Detector.meta_messages d')

let test_piggyback_ships_clock_words () =
  (* Under the default Piggyback_txn transport each put is one lock
     round trip plus the data message, and of those only Lock_granted
     and Put carry clocks. Every frame here is first-on-its-edge, so no
     delta base exists and the adaptive (default Delta_wire) encoder
     ships self-contained sparse frames: the two grants carry node 2's
     still-zero clock (2 payload + tag + seq = 4 words each), the two
     puts a single-entry sender clock (4 payload + tag + seq = 6 words
     each) — 20 words in total. *)
  let d = scenario_5a Config.default in
  Alcotest.(check int) "clock words" 20 (Detector.clock_words_shipped d);
  let _, sparse, delta = Machine.clock_encodings (Detector.machine d) in
  Alcotest.(check int) "self-contained sparse frames" 4 sparse;
  Alcotest.(check int) "no deltas without a base" 0 delta

(* ---------- ablation: Lamport clocks detect nothing ---------- *)

let test_lamport_misses_races () =
  let d =
    scenario_5a { Config.default with Config.clock_mode = Config.Lamport_only }
  in
  Alcotest.(check int) "scalar clocks are blind" 0 (races d)

(* ---------- granularity ---------- *)

let test_unregistered_variable_rejected () =
  let m, d = make () in
  let a = Machine.alloc_public m ~pid:2 ~len:1 () in
  (* not registered *)
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:a);
  match Machine.run m with
  | exception Engine.Process_failure (_, Failure msg) ->
      Alcotest.(check bool) "explains" true
        (Test_util.contains msg "unregistered shared data")
  | _ -> Alcotest.fail "expected a failure about unregistered data"

let test_word_granularity_needs_no_registration () =
  let m, d =
    make ~config:{ Config.default with Config.granularity = Config.Word } ()
  in
  let a = Machine.alloc_public m ~pid:2 ~len:4 () in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1; 1; 1; 1 |]) ~dst:a);
  Machine.spawn m ~pid:1 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:1 [| 2; 2; 2; 2 |]) ~dst:a);
  expect_completed m;
  (* 4 overlapping word granules, each signalling once at the second put *)
  Alcotest.(check int) "four word-level signals" 4 (races d)

let test_block_granularity_false_sharing () =
  (* Two writes to DISJOINT words race at block granularity but not at
     word granularity: the classic false-sharing artifact. *)
  let run granularity =
    let m, d = make ~config:{ Config.default with Config.granularity } () in
    let a = Machine.alloc_public m ~pid:2 ~len:8 () in
    let sub offset =
      Addr.region ~pid:2 ~space:Addr.Public ~offset ~len:1
    in
    Machine.spawn m ~pid:0 (fun p ->
        Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:(sub 0));
    Machine.spawn m ~pid:1 (fun p ->
        Detector.put d p ~src:(private_buf m ~pid:1 [| 2 |]) ~dst:(sub 7));
    ignore a;
    expect_completed m;
    races d
  in
  Alcotest.(check int) "word: clean" 0 (run Config.Word);
  Alcotest.(check int) "block8: false sharing" 1 (run (Config.Block 8))

let test_register_overlap_rejected () =
  let _, d = make () in
  let _ = Detector.alloc_shared d ~pid:0 ~len:4 () in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Clock_store.register: overlaps a registered variable")
    (fun () ->
      Detector.register d (Addr.region ~pid:0 ~space:Addr.Public ~offset:2 ~len:2))

let test_access_spanning_two_variables () =
  (* One put covering two registered variables checks both granules. *)
  let m, d = make () in
  let x = Detector.alloc_shared d ~pid:2 ~name:"x" ~len:2 () in
  let _y = Detector.alloc_shared d ~pid:2 ~name:"y" ~len:2 () in
  let span =
    Addr.region ~pid:2 ~space:Addr.Public ~offset:x.Addr.base.offset ~len:4
  in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1; 1; 1; 1 |]) ~dst:span);
  Machine.spawn m ~pid:1 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:1 [| 2; 2; 2; 2 |]) ~dst:span);
  expect_completed m;
  (* the second put signals once per covered variable *)
  Alcotest.(check int) "one signal per variable" 2 (races d)

let test_partially_registered_access_rejected () =
  let m, d = make () in
  let x = Detector.alloc_shared d ~pid:2 ~name:"x" ~len:2 () in
  ignore (Machine.alloc_public m ~pid:2 ~len:2 ()) (* unregistered hole *);
  let span =
    Addr.region ~pid:2 ~space:Addr.Public ~offset:x.Addr.base.offset ~len:4
  in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1; 1; 1; 1 |]) ~dst:span);
  match Machine.run m with
  | exception Engine.Process_failure (_, Failure msg) ->
      Alcotest.(check bool) "explains" true
        (Test_util.contains msg "unregistered")
  | _ -> Alcotest.fail "expected rejection of the partly covered access"

let test_report_csv () =
  let d = scenario_5a Config.default in
  let csv = Report.to_csv (Detector.report d) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 1 row" 2 (List.length lines);
  Alcotest.(check bool) "header columns" true
    (Test_util.contains (List.hd lines) "accessor_clock");
  Alcotest.(check bool) "row mentions the writer kind" true
    (Test_util.contains csv ",write,")

let test_report_suppression () =
  (* §4.4: intentional races are acknowledged, not silenced wholesale. *)
  let m, d = make ~n:4 () in
  let intentional = Detector.alloc_shared d ~pid:3 ~name:"mw" ~len:1 () in
  let accidental = Detector.alloc_shared d ~pid:3 ~name:"bug" ~len:1 () in
  Report.suppress (Detector.report d) intentional;
  for pid = 0 to 2 do
    Machine.spawn m ~pid (fun p ->
        Detector.put d p ~src:(private_buf m ~pid [| pid |]) ~dst:intentional;
        Detector.put d p ~src:(private_buf m ~pid [| pid |]) ~dst:accidental)
  done;
  expect_completed m;
  (* Only the unsuppressed variable counts... *)
  List.iter
    (fun r ->
      Alcotest.(check int) "signals only on the bug"
        accidental.Addr.base.offset r.Report.granule.Addr.base.offset)
    (Report.races (Detector.report d));
  Alcotest.(check int) "bug signals" 2 (races d);
  (* ...but the intentional ones are still on record. *)
  Alcotest.(check int) "suppressed recorded" 2
    (List.length (Report.suppressed (Detector.report d)))

(* ISSUE 9 satellite: suppressing a region must also retroactively move
   already-signalled races out of the live set — count, races and
   grouped stay consistent, and the moved signals remain on record. *)
let test_report_suppress_after_signal () =
  let m, d = make ~n:4 () in
  let intentional = Detector.alloc_shared d ~pid:3 ~name:"mw" ~len:1 () in
  let accidental = Detector.alloc_shared d ~pid:3 ~name:"bug" ~len:1 () in
  for pid = 0 to 2 do
    Machine.spawn m ~pid (fun p ->
        Detector.put d p ~src:(private_buf m ~pid [| pid |]) ~dst:intentional;
        Detector.put d p ~src:(private_buf m ~pid [| pid |]) ~dst:accidental)
  done;
  expect_completed m;
  let report = Detector.report d in
  Alcotest.(check int) "both variables signalled" 4 (Report.count report);
  Report.suppress report intentional;
  Alcotest.(check int) "count excludes the suppressed granule" 2
    (Report.count report);
  Alcotest.(check int) "list agrees with count" (Report.count report)
    (List.length (Report.races report));
  List.iter
    (fun r ->
      Alcotest.(check int) "live races only on the bug"
        accidental.Addr.base.offset r.Report.granule.Addr.base.offset)
    (Report.races report);
  Alcotest.(check int) "moved to suppressed" 2
    (List.length (Report.suppressed report));
  let grouped_total =
    List.fold_left (fun a g -> a + g.Report.g_count) 0 (Report.grouped report)
  in
  Alcotest.(check int) "grouped covers exactly the live races" 2 grouped_total

(* ISSUE 9 satellite: the CSV gained an event_id column joining each
   signal to its recorded trace event; without tracing the cell is
   empty but the column is always there. *)
let test_report_csv_event_id () =
  let d = scenario_5a Config.default in
  let csv = Report.to_csv (Detector.report d) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  let header = List.hd lines in
  Alcotest.(check bool) "event_id column" true
    (Test_util.contains header ",event_id");
  (* field count, ignoring commas inside double-quoted clock snapshots *)
  let cols s =
    let n = ref 1 and quoted = ref false in
    String.iter
      (fun c ->
        if c = '"' then quoted := not !quoted
        else if c = ',' && not !quoted then incr n)
      s;
    !n
  in
  List.iter
    (fun line ->
      Alcotest.(check int) "row width matches header" (cols header)
        (cols line))
    lines

let test_report_clear () =
  let d = scenario_5a Config.default in
  Alcotest.(check int) "had one" 1 (races d);
  Report.clear (Detector.report d);
  Alcotest.(check int) "cleared" 0 (races d)

(* ---------- deadlock ablation ---------- *)

let deadlock_scenario ~ordered =
  let m, d =
    make ~n:2
      ~config:{ Config.default with Config.ordered_locking = ordered }
      ()
  in
  let x = Detector.alloc_shared d ~pid:0 ~name:"x" ~len:1 () in
  let y = Detector.alloc_shared d ~pid:1 ~name:"y" ~len:1 () in
  (* P0: put x -> y locks x then y (paper order); P1: put y -> x locks y
     then x. Opposite orders deadlock unless globally ordered. *)
  Machine.spawn m ~pid:0 (fun p -> Detector.put d p ~src:x ~dst:y);
  Machine.spawn m ~pid:1 (fun p -> Detector.put d p ~src:y ~dst:x);
  Machine.run m

let test_paper_lock_order_can_deadlock () =
  match deadlock_scenario ~ordered:false with
  | Engine.Blocked 2 -> ()
  | Engine.Completed ->
      Alcotest.fail "expected the literal src-then-dst order to deadlock"
  | _ -> Alcotest.fail "unexpected outcome"

let test_ordered_locking_avoids_deadlock () =
  match deadlock_scenario ~ordered:true with
  | Engine.Completed -> ()
  | Engine.Blocked k -> Alcotest.failf "deadlocked with %d" k
  | _ -> Alcotest.fail "unexpected outcome"

(* ---------- counters ---------- *)

let test_counters () =
  let d = scenario_5a Config.default in
  Alcotest.(check int) "two checked ops" 2 (Detector.checked_ops d);
  (* one variable entry (v,w of dim 3) + 3 proc clocks of dim 3 *)
  Alcotest.(check int) "storage words" ((2 * 3) + (3 * 3))
    (Detector.storage_words d)

let test_proc_clock_snapshot () =
  let m, d = make () in
  let a = Detector.alloc_shared d ~pid:1 ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:a);
  expect_completed m;
  let c = Detector.proc_clock d 0 in
  Alcotest.(check int) "ticked once" 1 (Dsm_clocks.Vector_clock.entry c 0);
  Alcotest.(check int) "others zero" 0 (Dsm_clocks.Vector_clock.entry c 1)

let test_verdict_stable_under_lock_discipline () =
  (* DESIGN ablation: the NIC's grant discipline reorders lock grants but
     must not change race verdicts. *)
  let run discipline =
    let sim = Engine.create () in
    let m =
      Machine.create sim ~n:3 ~latency:(Dsm_net.Latency.Constant 1.0)
        ~discipline ()
    in
    let d = Detector.create m () in
    let a = Detector.alloc_shared d ~pid:2 ~name:"a" ~len:1 () in
    Machine.spawn m ~pid:0 (fun p ->
        Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:a);
    Machine.spawn m ~pid:1 (fun p ->
        Detector.put d p ~src:(private_buf m ~pid:1 [| 2 |]) ~dst:a);
    expect_completed m;
    races d
  in
  Alcotest.(check int) "first-fit" 1 (run Dsm_memory.Lock_table.First_fit);
  Alcotest.(check int) "strict head" 1 (run Dsm_memory.Lock_table.Strict_head)

(* ---------- report grouping ---------- *)

let test_report_grouping () =
  let m, d = make ~n:4 () in
  let a = Detector.alloc_shared d ~pid:3 ~name:"a" ~len:1 () in
  let b = Detector.alloc_shared d ~pid:3 ~name:"b" ~len:1 () in
  for pid = 0 to 2 do
    Machine.spawn m ~pid (fun p ->
        Detector.put d p ~src:(private_buf m ~pid [| pid |]) ~dst:a;
        Detector.put d p ~src:(private_buf m ~pid [| pid |]) ~dst:b)
  done;
  expect_completed m;
  let groups = Report.grouped (Detector.report d) in
  Alcotest.(check int) "two raced data" 2 (List.length groups);
  List.iter
    (fun g ->
      Alcotest.(check bool) "several signals collapsed" true
        (g.Report.g_count >= 1);
      Alcotest.(check bool) "accessors sorted" true
        (g.Report.g_pids = List.sort compare g.Report.g_pids))
    groups;
  (* groups ordered by first signal time *)
  match groups with
  | [ g1; g2 ] ->
      Alcotest.(check bool) "time ordered" true
        (g1.Report.g_first_time <= g2.Report.g_first_time)
  | _ -> Alcotest.fail "expected two groups"

(* ---------- checked atomics (extension) ---------- *)

let test_atomics_do_not_race_each_other () =
  let m, d = make ~n:4 () in
  let counter = Detector.alloc_shared d ~pid:0 ~name:"ctr" ~len:1 () in
  for pid = 1 to 3 do
    Machine.spawn m ~pid (fun p ->
        for _ = 1 to 5 do
          ignore (Detector.fetch_add d p ~target:counter.Addr.base ~delta:1)
        done)
  done;
  expect_completed m;
  Alcotest.(check int) "atomics are synchronized" 0 (races d);
  Alcotest.(check (array int)) "no lost updates" [| 15 |]
    (Node_memory.read (Machine.node m 0) counter)

let test_atomic_races_with_plain_write () =
  let m, d = make () in
  let cell = Detector.alloc_shared d ~pid:2 ~name:"cell" ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 7 |]) ~dst:cell);
  Machine.spawn m ~pid:1 (fun p ->
      Machine.compute p 30.0;
      ignore (Detector.fetch_add d p ~target:cell.Addr.base ~delta:1));
  expect_completed m;
  Alcotest.(check int) "atomic vs plain write" 1 (races d)

let test_plain_read_races_with_atomic () =
  let m, d = make () in
  let cell = Detector.alloc_shared d ~pid:2 ~name:"cell" ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      ignore (Detector.fetch_add d p ~target:cell.Addr.base ~delta:1));
  Machine.spawn m ~pid:1 (fun p ->
      Machine.compute p 30.0;
      let buf = Machine.alloc_private m ~pid:1 ~len:1 () in
      Detector.get d p ~src:cell ~dst:buf);
  expect_completed m;
  Alcotest.(check int) "plain read vs atomic" 1 (races d)

let test_atomic_synchronizes_causality () =
  (* P0 writes data, then atomically sets a flag. P1 atomically reads the
     flag (fetch_add 0), then reads the data: the atomic chain orders the
     data accesses, so only no races at all are expected once the flag
     access is itself atomic on both sides. *)
  let m, d = make () in
  let data = Detector.alloc_shared d ~pid:2 ~name:"data" ~len:1 () in
  let flag = Detector.alloc_shared d ~pid:2 ~name:"flag" ~len:1 () in
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 99 |]) ~dst:data;
      ignore (Detector.fetch_add d p ~target:flag.Addr.base ~delta:1));
  Machine.spawn m ~pid:1 (fun p ->
      Machine.compute p 50.0;
      (* acquire: atomically observe the flag *)
      ignore (Detector.fetch_add d p ~target:flag.Addr.base ~delta:0);
      let buf = Machine.alloc_private m ~pid:1 ~len:1 () in
      Detector.get d p ~src:data ~dst:buf);
  expect_completed m;
  Alcotest.(check int) "atomic flag chain orders the data read" 0 (races d)

(* Regression: lock clocks must be keyed by the lock region's full
   identity, space included. Keyed by bare (pid, offset, len), P0's
   private region aliases the public mutex at the same coordinates, so a
   lock/unlock of the private region would publish P0's clock into the
   shared mutex's clock and falsely order P1's write after P0's —
   hiding a real race. *)
let test_lock_clock_space_collision () =
  let config = { Config.default with Config.lock_aware_clocks = true } in
  let m, d = make ~config () in
  let a = Detector.alloc_shared d ~pid:2 ~name:"a" ~len:1 () in
  (* First allocation on node 0 in each space: identical coordinates. *)
  let priv = Machine.alloc_private m ~pid:0 ~len:1 () in
  let mutex = Machine.alloc_public m ~pid:0 ~name:"mutex" ~len:1 () in
  Alcotest.(check int) "aliasing coordinates" priv.Addr.base.offset
    mutex.Addr.base.offset;
  Machine.spawn m ~pid:0 (fun p ->
      Detector.put d p ~src:(private_buf m ~pid:0 [| 1 |]) ~dst:a;
      (* Locking one's own private region is a mutual-exclusion no-op;
         it must also be invisible to the public mutex's clock. *)
      let h = Detector.lock d p priv in
      Detector.unlock d p h);
  Machine.spawn m ~pid:1 (fun p ->
      Machine.compute p 50.0;
      let h = Detector.lock d p mutex in
      Detector.put d p ~src:(private_buf m ~pid:1 [| 2 |]) ~dst:a;
      Detector.unlock d p h);
  expect_completed m;
  Alcotest.(check int) "private lock does not order the puts" 1 (races d)

(* ---------- detector vs. offline ground truth ---------- *)

(* Random lock-free workloads at word granularity: the set of granules the
   online detector flags must equal the set of words the offline
   happens-before analysis proves racy (see the derivation in DESIGN.md
   §4 notes; this is the E8/E9 soundness core). *)
let ground_truth_equivalence ~seed =
  let n = 4 in
  let config =
    {
      Config.default with
      Config.granularity = Config.Word;
      Config.record_trace = true;
    }
  in
  let m, d = make ~n ~config ~seed () in
  (* Three shared arrays of 4 words, on nodes 1, 2, 3. *)
  let vars =
    [| Machine.alloc_public m ~pid:1 ~len:4 ();
       Machine.alloc_public m ~pid:2 ~len:4 ();
       Machine.alloc_public m ~pid:3 ~len:4 () |]
  in
  let g = Dsm_sim.Prng.create ~seed:(seed * 7 + 1) in
  for pid = 0 to n - 1 do
    let ops =
      List.init 12 (fun _ ->
          let v = vars.(Dsm_sim.Prng.int g 3) in
          let offset = v.Addr.base.offset + Dsm_sim.Prng.int g 3 in
          let len = 1 + Dsm_sim.Prng.int g 2 in
          let sub =
            Addr.region ~pid:v.Addr.base.pid ~space:Addr.Public ~offset ~len
          in
          let op =
            match Dsm_sim.Prng.int g 5 with
            | 0 -> `Atomic
            | 1 | 2 -> `Put
            | _ -> `Get
          in
          let delay = Dsm_sim.Prng.float g 20.0 in
          (op, sub, len, delay))
    in
    Machine.spawn m ~pid (fun p ->
        List.iter
          (fun (op, (sub : Addr.region), len, delay) ->
            Machine.compute p delay;
            let buf = Machine.alloc_private m ~pid ~len () in
            match op with
            | `Put -> Detector.put d p ~src:buf ~dst:sub
            | `Get -> Detector.get d p ~src:sub ~dst:buf
            | `Atomic ->
                ignore (Detector.fetch_add d p ~target:sub.base ~delta:1))
          ops)
  done;
  expect_completed m;
  let trace =
    match Detector.trace d with Some t -> t | None -> Alcotest.fail "no trace"
  in
  (* Granules flagged online. *)
  let flagged = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let g = r.Report.granule in
      Hashtbl.replace flagged (g.Addr.base.pid, g.Addr.base.offset) ())
    (Report.races (Detector.report d));
  (* Words racy offline. *)
  let truth = Hashtbl.create 16 in
  List.iter
    (fun { Dsm_trace.Trace.first; second } ->
      let overlap_words (a : Dsm_trace.Event.access)
          (b : Dsm_trace.Event.access) =
        let lo = max a.target.base.offset b.target.base.offset in
        let hi =
          min (Addr.last_offset a.target) (Addr.last_offset b.target)
        in
        List.init (hi - lo + 1) (fun i -> (a.target.base.pid, lo + i))
      in
      List.iter
        (fun k -> Hashtbl.replace truth k ())
        (overlap_words first second))
    (Dsm_trace.Trace.races trace);
  let to_sorted_list h =
    Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    (Printf.sprintf "flagged = ground truth (seed %d)" seed)
    (to_sorted_list truth) (to_sorted_list flagged)

let test_ground_truth_seeds () =
  List.iter (fun seed -> ground_truth_equivalence ~seed) [ 1; 2; 3; 4; 5; 6 ]

(* ---------- Clock_store packed keys ---------- *)

(* The store keys granules by (offset, len) packed into one immediate
   int. Packing must be injective over the documented range — a
   collision would silently share one clock pair between two unrelated
   granules — and anything outside the range must be rejected, not
   wrapped around into a valid-looking key. *)

let cs_max_len = (1 lsl 21) - 1
let cs_max_off = 1 lsl 40

let gen_granule =
  QCheck.Gen.(
    let off =
      oneof
        [
          int_range 0 4096;
          int_range 0 cs_max_off;
          (* overflow-adjacent: right at the top of the packable range *)
          map (fun k -> cs_max_off - k) (int_range 0 64);
        ]
    in
    let len =
      oneof
        [
          int_range 0 64;
          int_range 0 cs_max_len;
          map (fun k -> cs_max_len - k) (int_range 0 64);
        ]
    in
    pair off len)

let arb_granule_pair =
  QCheck.make
    ~print:(fun ((o1, l1), (o2, l2)) ->
      Printf.sprintf "(%d,%d) / (%d,%d)" o1 l1 o2 l2)
    QCheck.Gen.(pair gen_granule gen_granule)

let prop_packed_key_injective =
  QCheck.Test.make ~name:"packed keys: distinct granule = distinct entry"
    ~count:1000 arb_granule_pair (fun ((o1, l1), (o2, l2)) ->
      let store =
        Clock_store.create ~node:0 ~clock_dim:3 ~granularity:Config.Word ()
      in
      let e1 = Clock_store.entry_at store ~offset:o1 ~len:l1 in
      let e2 = Clock_store.entry_at store ~offset:o2 ~len:l2 in
      (e1 == e2) = (o1 = o2 && l1 = l2))

let arb_bad_granule =
  QCheck.make
    ~print:(fun (o, l) -> Printf.sprintf "(%d,%d)" o l)
    QCheck.Gen.(
      oneof
        [
          pair (int_range (-4096) (-1)) (int_range 0 64);
          pair (int_range 0 4096) (int_range (-64) (-1));
          pair (int_range 0 4096)
            (map (fun k -> cs_max_len + 1 + k) (int_range 0 64));
          pair
            (map (fun k -> cs_max_off + 1 + k) (int_range 0 64))
            (int_range 0 64);
        ])

let prop_packed_key_rejects_out_of_range =
  QCheck.Test.make ~name:"packed keys: out-of-range granules rejected"
    ~count:500 arb_bad_granule (fun (offset, len) ->
      let store =
        Clock_store.create ~node:0 ~clock_dim:3 ~granularity:Config.Word ()
      in
      match Clock_store.entry_at store ~offset ~len with
      | _ -> false
      | exception Invalid_argument _ -> true)

(* ---------- Sharded store (ISSUE 5 scaling) ---------- *)

let test_store_shard_validation () =
  List.iter
    (fun shards ->
      match
        Clock_store.create ~node:0 ~clock_dim:4 ~granularity:Config.Word
          ~shards ()
      with
      | _ -> Alcotest.failf "shards = %d accepted" shards
      | exception Invalid_argument _ -> ())
    [ 0; -1; 3; 6; 12 ];
  let s =
    Clock_store.create ~node:0 ~clock_dim:4 ~granularity:Config.Word
      ~shards:8 ()
  in
  Alcotest.(check int) "shard count" 8 (Clock_store.shards s);
  let d =
    Clock_store.create ~node:0 ~clock_dim:4 ~granularity:Config.Word ()
  in
  Alcotest.(check int) "default unsharded" 1 (Clock_store.shards d)

(* Sharding is pure data-structure layout: granule identity, lazy
   creation, counters and iteration order are bit-identical between an
   unsharded store and an 8-way sharded one. *)
let test_store_sharding_invisible () =
  let mk shards =
    Clock_store.create ~node:0 ~clock_dim:4 ~granularity:Config.Word ~shards
      ()
  in
  let s1 = mk 1 and s8 = mk 8 in
  (* offsets straddling several 64-word address ranges *)
  let offsets = [ 0; 1; 63; 64; 65; 130; 1024; 4095 ] in
  List.iter
    (fun off ->
      List.iter
        (fun s ->
          let e = Clock_store.entry_at s ~offset:off ~len:1 in
          Dsm_clocks.Vector_clock.tick e.Clock_store.v ~me:(off mod 4))
        [ s1; s8 ])
    offsets;
  Alcotest.(check int) "same entry count" (Clock_store.entries s1)
    (Clock_store.entries s8);
  Alcotest.(check int) "same storage words"
    (Clock_store.storage_words s1)
    (Clock_store.storage_words s8);
  Alcotest.(check int) "same epoch census"
    (Clock_store.epoch_clocks s1)
    (Clock_store.epoch_clocks s8);
  let region =
    Addr.region ~pid:0 ~space:Addr.Public ~offset:60 ~len:10
  in
  Alcotest.(check bool) "same granule walk" true
    (Clock_store.granules s1 region = Clock_store.granules s8 region);
  List.iter
    (fun off ->
      let e1 = Clock_store.entry_at s1 ~offset:off ~len:1 in
      let e8 = Clock_store.entry_at s8 ~offset:off ~len:1 in
      Alcotest.(check bool)
        (Printf.sprintf "clocks at %d agree" off)
        true
        (Dsm_clocks.Vector_clock.equal e1.Clock_store.v e8.Clock_store.v))
    offsets;
  (* hit path returns the same physical entry in both layouts *)
  List.iter
    (fun s ->
      let a = Clock_store.entry_at s ~offset:64 ~len:1 in
      let b = Clock_store.entry_at s ~offset:64 ~len:1 in
      Alcotest.(check bool) "stable physical entry" true (a == b))
    [ s1; s8 ]

let test_store_shard_scratch () =
  let s =
    Clock_store.create ~node:0 ~clock_dim:4 ~granularity:Config.Word
      ~rep:Config.Sparse_vector ~shards:4 ()
  in
  let a = Clock_store.shard_scratch s ~offset:0 in
  let b = Clock_store.shard_scratch s ~offset:63 in
  let c = Clock_store.shard_scratch s ~offset:64 in
  Alcotest.(check bool) "same range, same scratch" true (a == b);
  Alcotest.(check bool) "next range, next shard" true (not (a == c));
  (* round-robin: 4 shards x 64-word ranges wrap at offset 256 *)
  let w = Clock_store.shard_scratch s ~offset:(4 * 64) in
  Alcotest.(check bool) "ranges wrap round-robin" true (a == w);
  Alcotest.(check bool) "scratch in store rep" true
    (Dsm_clocks.Vector_clock.rep a = Dsm_clocks.Vector_clock.Sparse);
  Dsm_clocks.Vector_clock.reset a;
  Dsm_clocks.Vector_clock.tick a ~me:2;
  Alcotest.(check int) "scratch usable after reset" 1
    (Dsm_clocks.Vector_clock.entry a 2)

(* The same equivalence as a property over arbitrary seeds. *)
let prop_ground_truth_equivalence =
  QCheck.Test.make ~name:"online detector = offline HB (random seeds)"
    ~count:25
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 7 100000))
    (fun seed ->
      ground_truth_equivalence ~seed;
      true)

let () =
  Alcotest.run "core"
    [
      ( "figures",
        [
          Alcotest.test_case "5a concurrent puts" `Quick test_fig5a_concurrent_puts;
          Alcotest.test_case "5b program order" `Quick test_fig5b_program_order;
          Alcotest.test_case "5b via sync" `Quick test_fig5b_cross_process_via_barrier;
          Alcotest.test_case "5c intermediary" `Quick test_fig5c_intermediary_does_not_order;
          Alcotest.test_case "4 reads with W" `Quick test_fig4_concurrent_reads_no_race_with_w;
          Alcotest.test_case "4 reads without W" `Quick test_fig4_false_positive_without_w;
          Alcotest.test_case "write-read race" `Quick test_write_read_race_detected;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "transports agree" `Quick test_transports_agree_on_verdicts;
          Alcotest.test_case "explicit meta messages" `Quick test_explicit_costs_meta_messages;
          Alcotest.test_case "piggyback words" `Quick test_piggyback_ships_clock_words;
          Alcotest.test_case "lamport blind" `Quick test_lamport_misses_races;
        ] );
      ( "granularity",
        [
          Alcotest.test_case "unregistered rejected" `Quick test_unregistered_variable_rejected;
          Alcotest.test_case "word granularity" `Quick test_word_granularity_needs_no_registration;
          Alcotest.test_case "false sharing" `Quick test_block_granularity_false_sharing;
          Alcotest.test_case "register overlap" `Quick test_register_overlap_rejected;
        ] );
      ( "report",
        [
          Alcotest.test_case "grouping" `Quick test_report_grouping;
          Alcotest.test_case "clear" `Quick test_report_clear;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "csv event_id" `Quick test_report_csv_event_id;
          Alcotest.test_case "suppression" `Quick test_report_suppression;
          Alcotest.test_case "suppress after signal" `Quick
            test_report_suppress_after_signal;
        ] );
      ( "granule-coverage",
        [
          Alcotest.test_case "spanning access" `Quick test_access_spanning_two_variables;
          Alcotest.test_case "partial coverage" `Quick test_partially_registered_access_rejected;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "atomic-atomic synchronized" `Quick test_atomics_do_not_race_each_other;
          Alcotest.test_case "atomic vs plain write" `Quick test_atomic_races_with_plain_write;
          Alcotest.test_case "plain read vs atomic" `Quick test_plain_read_races_with_atomic;
          Alcotest.test_case "atomic flag chain" `Quick test_atomic_synchronizes_causality;
        ] );
      ( "locking",
        [
          Alcotest.test_case "paper order deadlocks" `Quick test_paper_lock_order_can_deadlock;
          Alcotest.test_case "ordered locking safe" `Quick test_ordered_locking_avoids_deadlock;
          Alcotest.test_case "discipline-stable verdicts" `Quick test_verdict_stable_under_lock_discipline;
          Alcotest.test_case "lock-clock space collision" `Quick test_lock_clock_space_collision;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "proc clock" `Quick test_proc_clock_snapshot;
        ] );
      ( "clock-store-keys",
        [
          QCheck_alcotest.to_alcotest prop_packed_key_injective;
          QCheck_alcotest.to_alcotest prop_packed_key_rejects_out_of_range;
        ] );
      ( "clock-store-shards",
        [
          Alcotest.test_case "shard count validation" `Quick
            test_store_shard_validation;
          Alcotest.test_case "sharding invisible" `Quick
            test_store_sharding_invisible;
          Alcotest.test_case "shard scratch" `Quick test_store_shard_scratch;
        ] );
      ( "ground-truth",
        [
          Alcotest.test_case "equivalence on seeds" `Quick test_ground_truth_seeds;
          QCheck_alcotest.to_alcotest prop_ground_truth_equivalence;
        ] );
    ]
