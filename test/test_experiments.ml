(* Smoke and verdict tests for the experiment sections: every E-section
   must run to completion, and the self-checking tables must not contain
   a FAIL verdict. *)

module Registry = Dsm_experiments.Registry
module Harness = Dsm_experiments.Harness

let render e =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.section ppf e;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_registry_complete () =
  Alcotest.(check (list string)) "ids"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16"; "E17" ]
    (List.map (fun e -> e.Harness.id) Registry.all)

let test_find () =
  (match Registry.find "e7" with
  | Some e -> Alcotest.(check string) "case-insensitive" "E7" e.Harness.id
  | None -> Alcotest.fail "E7 not found");
  Alcotest.(check bool) "unknown" true (Registry.find "E99" = None)

let check_experiment e () =
  let out = render e in
  Alcotest.(check bool)
    (e.Harness.id ^ " produced output")
    true
    (String.length out > 100);
  Alcotest.(check bool) (e.Harness.id ^ " has no FAIL verdict") false
    (Test_util.contains out "FAIL")

let expected_markers =
  [
    ("E1", "rejected: true");
    ("E2", "put = one message");
    ("E3", "delay (us)");
    ("E4", "PASS");
    ("E5", "RACE SIGNALED");
    ("E6", "blind, as predicted");
    ("E7", "piggyback");
    ("E8", "V+W (paper)");
    ("E9", "lockset (Eraser)");
    ("E10", "one-sided");
    ("E11", "FALSE POSITIVES");
    ("E12", "fetch-and-add");
    ("E13", "yes");
    ("E14", "coherent");
    ("E15", "both clean");
    ("E16", "paged SVM");
    ("E17", "pre-compiler");
  ]

let test_markers () =
  List.iter
    (fun (id, marker) ->
      match Registry.find id with
      | None -> Alcotest.failf "%s missing" id
      | Some e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s mentions %S" id marker)
            true
            (Test_util.contains (render e) marker))
    expected_markers

(* Regression (ISSUE 5 bug fix): [build_figure] used to accept machines
   with fewer than [figure_min_nodes] processes and crash (or silently
   drop participants) while spawning; it must refuse up front with a
   clean [Error] — for every figure, before any state is built. *)
let test_build_figure_rejects_small_machine () =
  let module Figures = Dsm_experiments.Figures in
  let module Machine = Dsm_rdma.Machine in
  List.iter
    (fun n ->
      let sim = Dsm_sim.Engine.create () in
      let m =
        Machine.create sim ~n ~latency:(Dsm_net.Latency.Constant 1.0) ()
      in
      List.iter
        (fun name ->
          match Figures.build_figure name m with
          | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d error names the floor" name n)
                true
                (Test_util.contains msg
                   (string_of_int Figures.figure_min_nodes))
          | Ok _ ->
              Alcotest.failf "%s accepted a %d-process machine" name n)
        Figures.figure_names;
      Alcotest.(check bool)
        (Printf.sprintf "n=%d machine untouched" n)
        true
        (Machine.fabric_messages m = 0))
    [ 1; 2 ];
  (* the floor itself still builds *)
  let sim = Dsm_sim.Engine.create () in
  let m =
    Machine.create sim ~n:Figures.figure_min_nodes
      ~latency:(Dsm_net.Latency.Constant 1.0) ()
  in
  (match Figures.build_figure "fig2" m with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "fig2 returned a detector"
  | Error msg -> Alcotest.failf "fig2 rejected at the floor: %s" msg);
  (* unknown names still get the name error, not the size error *)
  (match Figures.build_figure "fig9" m with
  | Error msg ->
      Alcotest.(check bool) "unknown name reported" true
        (Test_util.contains msg "unknown figure scenario")
  | Ok _ -> Alcotest.fail "unknown figure accepted")

let () =
  let per_experiment =
    List.map
      (fun e ->
        Alcotest.test_case (e.Harness.id ^ " runs clean") `Slow
          (check_experiment e))
      Registry.all
  in
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ("sections", per_experiment);
      ("markers", [ Alcotest.test_case "content" `Slow test_markers ]);
      ( "figures",
        [
          Alcotest.test_case "small machine rejected" `Quick
            test_build_figure_rejects_small_machine;
        ] );
    ]
