(* dsmcheck: command-line driver for the DSM race-detection reproduction.

   Subcommands:
     dsmcheck list                      list the paper experiments
     dsmcheck experiment E5             replay one experiment (or "all")
     dsmcheck workload random ...       run a workload under the detector
*)

open Cmdliner
module Machine = Dsm_rdma.Machine
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Env = Dsm_pgas.Env
module Collectives = Dsm_pgas.Collectives

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* ---------- list ---------- *)

let list_cmd =
  let doc = "List the experiments (E1..E10 reproduce the paper; E11+ are extensions)." in
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-4s %s@." e.Dsm_experiments.Harness.id
          e.Dsm_experiments.Harness.paper_artifact)
      Dsm_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------- experiment ---------- *)

let experiment_cmd =
  let doc = "Replay one experiment section, or $(b,all) of them." in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (E1..E17) or 'all'.")
  in
  let run id =
    let ppf = Format.std_formatter in
    if String.lowercase_ascii id = "all" then begin
      Dsm_experiments.Registry.run_all ppf;
      `Ok ()
    end
    else
      match Dsm_experiments.Registry.run_only ppf id with
      | Ok () -> `Ok ()
      | Error msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(ret (const run $ id))

(* ---------- workload ---------- *)

type which = Random | Master_worker | Stencil | Pipeline | Locked_counter

let which_conv =
  let parse = function
    | "random" -> Ok Random
    | "master-worker" -> Ok Master_worker
    | "stencil" -> Ok Stencil
    | "pipeline" -> Ok Pipeline
    | "locked-counter" -> Ok Locked_counter
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print ppf = function
    | Random -> Format.pp_print_string ppf "random"
    | Master_worker -> Format.pp_print_string ppf "master-worker"
    | Stencil -> Format.pp_print_string ppf "stencil"
    | Pipeline -> Format.pp_print_string ppf "pipeline"
    | Locked_counter -> Format.pp_print_string ppf "locked-counter"
  in
  Arg.conv (parse, print)

let run_workload which n seed ops racy detect coherence verbose explain dot_file csv_file report_csv =
  setup_logs verbose;
  if n < 2 then `Error (false, "need at least 2 processes")
  else begin
    let sim = Dsm_sim.Engine.create ~seed ()
    in
    let machine = Machine.create sim ~n () in
    let checker =
      if coherence then Some (Dsm_rdma.Coherence.attach machine) else None
    in
    let config =
      {
        Config.default with
        Config.record_trace = dot_file <> None || csv_file <> None || explain;
        granularity = Config.Word;
      }
    in
    let detector =
      if detect then Some (Detector.create machine ~config ~verbose ())
      else None
    in
    let env =
      match detector with
      | Some d -> Env.checked d
      | None -> Env.plain machine
    in
    let collectives = Collectives.create env in
    (match which with
    | Random ->
        Dsm_workload.Random_access.setup env ~collectives
          { Dsm_workload.Random_access.default with ops_per_proc = ops; seed }
    | Master_worker ->
        Dsm_workload.Master_worker.setup env ~collectives
          { Dsm_workload.Master_worker.default with tasks_per_worker = ops; racy; seed }
    | Stencil ->
        ignore
          (Dsm_workload.Stencil.setup env ~collectives
             { Dsm_workload.Stencil.default with iterations = ops; seed })
    | Pipeline ->
        Dsm_workload.Pipeline.setup env
          { Dsm_workload.Pipeline.default with batches = ops; seed }
    | Locked_counter ->
        Dsm_workload.Locked_counter.setup env
          { Dsm_workload.Locked_counter.default with
            increments_per_proc = ops; seed });
    (match Machine.run machine with
    | Dsm_sim.Engine.Completed -> ()
    | _ -> prerr_endline "warning: simulation did not complete");
    Format.printf "simulated time : %.2f us@." (Dsm_sim.Engine.now sim);
    (match checker with
    | None -> ()
    | Some ch ->
        Format.printf "coherence      : %d words checked, %d violation(s)@."
          (Dsm_rdma.Coherence.checked_words ch)
          (List.length (Dsm_rdma.Coherence.violations ch));
        List.iter
          (fun v ->
            Format.printf "  %a@." Dsm_rdma.Coherence.pp_violation v)
          (Dsm_rdma.Coherence.violations ch));
    Format.printf "messages       : %d (%d words)@."
      (Machine.fabric_messages machine)
      (Machine.fabric_words machine);
    (match detector with
    | None -> Format.printf "detection      : off@."
    | Some d ->
        Format.printf "checked ops    : %d@." (Detector.checked_ops d);
        Format.printf "@[<v>%a@]@." Report.pp_grouped (Detector.report d);
        (match report_csv with
        | Some path ->
            let oc = open_out path in
            output_string oc (Report.to_csv (Detector.report d));
            close_out oc;
            Format.printf "signals csv    : %s@." path
        | None -> ());
        if verbose then
          Format.printf "@[<v>%a@]@." Report.pp_summary (Detector.report d);
        (match Detector.trace d with
        | Some trace ->
            if explain then begin
              (* Pair each signalled access with one ground-truth race it
                 belongs to and show why the accesses are unordered. *)
              let flagged = Report.flagged_event_ids (Detector.report d) in
              let shown = Hashtbl.create 8 in
              List.iter
                (fun { Dsm_trace.Trace.first; second } ->
                  if
                    Hashtbl.mem flagged second.Dsm_trace.Event.id
                    && not (Hashtbl.mem shown second.Dsm_trace.Event.id)
                  then begin
                    Hashtbl.add shown second.Dsm_trace.Event.id ();
                    Format.printf "@.%s"
                      (Dsm_trace.Trace.explain trace
                         ~first:first.Dsm_trace.Event.id
                         ~second:second.Dsm_trace.Event.id)
                  end)
                (Dsm_trace.Trace.races trace)
            end;
            Format.printf "trace          : %a@." Dsm_trace.Export.pp_summary
              (Dsm_trace.Export.summary trace);
            (match dot_file with
            | Some path ->
                let oc = open_out path in
                output_string oc (Dsm_trace.Trace.to_dot trace);
                close_out oc;
                Format.printf "trace graph    : %s@." path
            | None -> ());
            (match csv_file with
            | Some path ->
                let oc = open_out path in
                output_string oc (Dsm_trace.Export.to_csv trace);
                close_out oc;
                Format.printf "trace csv      : %s@." path
            | None -> ())
        | None -> ()));
    `Ok ()
  end

let workload_cmd =
  let doc = "Run a workload on the simulated DSM machine." in
  let which =
    Arg.(
      required
      & pos 0 (some which_conv) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "random, master-worker, stencil, pipeline, or locked-counter.")
  in
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Process count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let ops =
    Arg.(
      value & opt int 20
      & info [ "ops" ] ~doc:"Ops per process / tasks / iterations.")
  in
  let racy =
    Arg.(value & flag & info [ "racy" ] ~doc:"Racy master-worker variant.")
  in
  let detect =
    Arg.(
      value & opt bool true
      & info [ "detect" ] ~doc:"Enable the race detector.")
  in
  let coherence =
    Arg.(
      value & flag
      & info [ "coherence" ] ~doc:"Attach the memory-coherence checker.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print signals live.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"For each signal, print why the pair is unordered (Lemma 1).")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dot" ] ~docv:"FILE" ~doc:"Write the HB graph as DOT.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-csv" ] ~docv:"FILE" ~doc:"Write the event trace as CSV.")
  in
  let report_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "signals-csv" ] ~docv:"FILE"
          ~doc:"Write the race signals as CSV.")
  in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(
      ret
        (const run_workload $ which $ n $ seed $ ops $ racy $ detect
       $ coherence $ verbose $ explain $ dot $ csv $ report_csv))

(* ---------- run (mini-language programs) ---------- *)

let run_program path n instrument detect verbose =
  setup_logs verbose;
  let source =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  match Dsm_lang.Parser.parse source with
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" path msg)
  | Ok prog -> (
      match Dsm_lang.Compile.lower ~instrument prog with
      | Error msg -> `Error (false, msg)
      | Ok ir ->
          let sim = Dsm_sim.Engine.create () in
          let machine = Machine.create sim ~n () in
          let detector =
            if detect then Some (Detector.create machine ~verbose ())
            else None
          in
          let rt = Dsm_lang.Exec.setup machine ?detector ir in
          (match Machine.run machine with
          | Dsm_sim.Engine.Completed -> ()
          | _ -> prerr_endline "warning: simulation did not complete");
          Format.printf "wrappers       : %d checked / %d raw accesses@."
            (Dsm_lang.Ir.checked_accesses ir)
            (Dsm_lang.Ir.raw_accesses ir);
          Format.printf "simulated time : %.2f us@." (Dsm_sim.Engine.now sim);
          List.iter
            (fun (d : Dsm_lang.Ast.shared_decl) ->
              let contents = Dsm_lang.Exec.array_contents rt d.name in
              Format.printf "%-14s : [%s]@." d.name
                (String.concat " "
                   (Array.to_list (Array.map string_of_int contents))))
            prog.Dsm_lang.Ast.shared;
          (match detector with
          | None -> ()
          | Some d ->
              Format.printf "@[<v>%a@]@." Report.pp_grouped
                (Detector.report d));
          `Ok ())

let run_cmd =
  let doc = "Compile and run a mini-language program (see programs/*.dsm)." in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program source file.")
  in
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Process count.")
  in
  let instrument =
    Arg.(
      value & opt bool true
      & info [ "instrument" ]
          ~doc:"Let the pre-compiler insert detection wrappers (§5.2).")
  in
  let detect =
    Arg.(
      value & opt bool true
      & info [ "detect" ] ~doc:"Attach the race detector.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print signals live.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret (const run_program $ path $ n $ instrument $ detect $ verbose))

(* ---------- explore ---------- *)

module Explore = Dsm_explore.Explore
module Token = Dsm_explore.Token

let print_violations r =
  List.iter
    (fun v -> Format.printf "violation      : %a@." Explore.pp_violation v)
    r.Explore.violations

let run_explore scenario n seed runs depth jobs faults reliable bug max_events
    replay no_minimize verbose =
  setup_logs verbose;
  match replay with
  | Some token_str -> (
      match Token.of_string token_str with
      | Error msg -> `Error (false, msg)
      | Ok token -> (
          match Explore.replay token with
          | Error msg -> `Error (false, msg)
          | Ok r ->
              Format.printf "@[<v>%a@]@." Explore.pp_result r;
              print_violations r;
              if r.Explore.violations = [] then begin
                Format.printf "replay         : no invariant violated@.";
                `Ok ()
              end
              else `Ok ()))
  | None -> (
      let faults =
        match faults with
        | None -> Dsm_net.Fault.none
        | Some s -> Dsm_net.Fault.of_string s
      in
      let spec =
        {
          Explore.scenario;
          n;
          seed;
          faults;
          reliable;
          bug;
          max_events;
        }
      in
      (* Parallel.* with jobs <= 1 delegates to the sequential explorer,
         and for jobs > 1 its merge is bit-identical to it — so one call
         site covers every --jobs value. *)
      match
        match depth with
        | Some depth ->
            Dsm_explore.Parallel.explore_exhaustive ~jobs spec ~depth
              ~max_runs:runs
        | None -> Dsm_explore.Parallel.explore_random ~jobs spec ~runs
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Sys_error msg -> `Error (false, msg)
      | stats -> (
          Format.printf "schedules      : %d explored, %d violating@."
            stats.Explore.runs stats.Explore.violated;
          match stats.Explore.first with
          | None ->
              Format.printf "invariants     : all held@.";
              `Ok ()
          | Some (_, r) ->
              print_violations r;
              let decisions =
                if no_minimize then
                  Token.trim_trailing_zeros r.Explore.decisions
                else Explore.minimize spec r.Explore.decisions
              in
              let token = Explore.token_of spec decisions in
              Format.printf "repro          : %s@." (Token.to_string token);
              `Error (false, "invariant violated (see repro token)")))

let explore_cmd =
  let doc = "Explore schedules and injected faults, checking protocol invariants." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a scenario under many scheduler interleavings (randomized \
         walks by default, bounded-exhaustive with $(b,--depth)), \
         optionally under an injected fault plan, and checks protocol \
         invariants after every run: completion, operation/lock \
         quiescence, memory coherence, detector clock monotonicity, and \
         per-schedule determinism.";
      `P
        "On a violation it prints a compact repro token; $(b,--replay) \
         re-executes a token deterministically.";
      `P
        (Printf.sprintf "Scenarios: %s."
           (String.concat ", " Dsm_explore.Scenario.known));
    ]
  in
  let scenario =
    Arg.(
      value & pos 0 string "getput"
      & info [] ~docv:"SCENARIO"
          ~doc:"getput, prog:FILE.dsm, or workload:NAME.")
  in
  let n =
    Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Process count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Engine seed.") in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~doc:"Schedules to explore (cap, in --depth mode).")
  in
  let depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"D"
          ~doc:
            "Bounded-exhaustive mode: enumerate all deviations within the \
             first $(docv) choice points instead of random walks.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains to explore with. Findings are bit-identical \
             for every $(docv) — parallelism only changes wall-clock \
             time.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Fault plan, e.g. 'drop=0.2,dup=0.1' or '0>1:reorder=0.5' \
             (see the DESIGN notes for the grammar).")
  in
  let reliable =
    Arg.(
      value & flag
      & info [ "reliable" ]
          ~doc:"Enable the retry/ack transport so faults are survivable.")
  in
  let bug =
    Arg.(
      value & flag
      & info [ "bug" ]
          ~doc:
            "Plant the Skip_get_dst_lock protocol bug (for exercising the \
             explorer itself).")
  in
  let max_events =
    Arg.(
      value & opt int 200_000
      & info [ "max-events" ] ~doc:"Per-run event budget.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"TOKEN"
          ~doc:"Re-execute a repro token deterministically.")
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:"Skip schedule-prefix minimization of the repro token.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")
  in
  Cmd.v (Cmd.info "explore" ~doc ~man)
    Term.(
      ret
        (const run_explore $ scenario $ n $ seed $ runs $ depth $ jobs
       $ faults $ reliable $ bug $ max_events $ replay $ no_minimize
       $ verbose))

(* ---------- scenario ---------- *)

let scenario_cmd =
  let doc = "Replay one of the paper's figures (fig1..fig5)." in
  let figure =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE" ~doc:"fig1, fig2, fig3, fig4, or fig5.")
  in
  let run figure =
    let experiment_of = function
      | "fig1" -> Some "E1"
      | "fig2" -> Some "E2"
      | "fig3" -> Some "E3"
      | "fig4" -> Some "E4"
      | "fig5" | "fig5a" | "fig5b" | "fig5c" -> Some "E5"
      | _ -> None
    in
    match experiment_of (String.lowercase_ascii figure) with
    | None -> `Error (false, Printf.sprintf "unknown figure %S" figure)
    | Some id -> (
        match
          Dsm_experiments.Registry.run_only Format.std_formatter id
        with
        | Ok () -> `Ok ()
        | Error msg -> `Error (false, msg))
  in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(ret (const run $ figure))

let main =
  let doc =
    "Coherent distributed memory with race-condition detection (Butelle & \
     Coti, IPPS 2011)"
  in
  Cmd.group
    (Cmd.info "dsmcheck" ~version:"1.0.0" ~doc)
    [ list_cmd; experiment_cmd; scenario_cmd; workload_cmd; run_cmd; explore_cmd ]

let () = exit (Cmd.eval main)
