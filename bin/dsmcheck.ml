(* dsmcheck: command-line driver for the DSM race-detection reproduction.

   Subcommands:
     dsmcheck list                      list the paper experiments
     dsmcheck experiment E5             replay one experiment (or "all")
     dsmcheck workload random ...       run a workload under the detector
*)

open Cmdliner
module Machine = Dsm_rdma.Machine
module Detector = Dsm_core.Detector
module Config = Dsm_core.Config
module Report = Dsm_core.Report
module Env = Dsm_pgas.Env
module Collectives = Dsm_pgas.Collectives

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* ---------- observability plumbing ---------- *)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Attach the requested probe sinks to a simulation. Must run before the
   workload populates the machine so the sinks observe the run end to
   end. *)
let attach_telemetry sim ~trace_out ~metrics =
  let probe = Dsm_sim.Engine.probe sim in
  let timeline =
    match trace_out with
    | Some _ -> Some (Dsm_obs.Timeline.attach probe)
    | None -> None
  in
  let registry =
    if metrics then begin
      let r = Dsm_obs.Metrics.create () in
      ignore (Dsm_obs.Meter.attach r probe);
      Some r
    end
    else None
  in
  (timeline, registry)

let write_string_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* Write the accumulated timeline, then re-validate the bytes on disk
   against the trace-event schema so a bad export fails here instead of
   inside Perfetto. *)
let write_trace timeline path =
  Dsm_obs.Timeline.write_file timeline path;
  match Dsm_obs.Trace_json.validate_trace (read_file path) with
  | Ok s ->
      Format.printf
        "trace out      : %s (%d events: %d slices, %d instants, %d flow \
         pairs, %d lanes)@."
        path s.Dsm_obs.Trace_json.events s.slices s.instants s.flows s.lanes;
      Ok ()
  | Error msg ->
      Error (Printf.sprintf "%s: exporter wrote invalid trace JSON: %s" path msg)

let print_metrics = function
  | None -> ()
  | Some registry ->
      Format.printf "@[<v 2>metrics        :@,%a@]@." Dsm_obs.Metrics.pp
        (Dsm_obs.Metrics.snapshot registry)

let finish_telemetry ~timeline ~trace_out ~registry =
  print_metrics registry;
  match (timeline, trace_out) with
  | Some tl, Some path -> write_trace tl path
  | _ -> Ok ()

(* ---------- list ---------- *)

let list_cmd =
  let doc = "List the experiments (E1..E10 reproduce the paper; E11+ are extensions)." in
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-4s %s@." e.Dsm_experiments.Harness.id
          e.Dsm_experiments.Harness.paper_artifact)
      Dsm_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------- experiment ---------- *)

let experiment_cmd =
  let doc = "Replay one experiment section, or $(b,all) of them." in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (E1..E17) or 'all'.")
  in
  let run id =
    let ppf = Format.std_formatter in
    if String.lowercase_ascii id = "all" then begin
      Dsm_experiments.Registry.run_all ppf;
      `Ok ()
    end
    else
      match Dsm_experiments.Registry.run_only ppf id with
      | Ok () -> `Ok ()
      | Error msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(ret (const run $ id))

(* ---------- workload ---------- *)

type which = Random | Master_worker | Stencil | Pipeline | Locked_counter

let which_conv =
  let parse = function
    | "random" -> Ok Random
    | "master-worker" -> Ok Master_worker
    | "stencil" -> Ok Stencil
    | "pipeline" -> Ok Pipeline
    | "locked-counter" -> Ok Locked_counter
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print ppf = function
    | Random -> Format.pp_print_string ppf "random"
    | Master_worker -> Format.pp_print_string ppf "master-worker"
    | Stencil -> Format.pp_print_string ppf "stencil"
    | Pipeline -> Format.pp_print_string ppf "pipeline"
    | Locked_counter -> Format.pp_print_string ppf "locked-counter"
  in
  Arg.conv (parse, print)

let run_workload which n seed ops racy detect coherence verbose explain dot_file csv_file report_csv =
  setup_logs verbose;
  if n < 2 then `Error (false, "need at least 2 processes")
  else begin
    let sim = Dsm_sim.Engine.create ~seed ()
    in
    let machine = Machine.create sim ~n () in
    let checker =
      if coherence then Some (Dsm_rdma.Coherence.attach machine) else None
    in
    let config =
      {
        Config.default with
        Config.record_trace = dot_file <> None || csv_file <> None || explain;
        granularity = Config.Word;
      }
    in
    let detector =
      if detect then Some (Detector.create machine ~config ~verbose ())
      else None
    in
    let env =
      match detector with
      | Some d -> Env.checked d
      | None -> Env.plain machine
    in
    let collectives = Collectives.create env in
    (match which with
    | Random ->
        Dsm_workload.Random_access.setup env ~collectives
          { Dsm_workload.Random_access.default with ops_per_proc = ops; seed }
    | Master_worker ->
        Dsm_workload.Master_worker.setup env ~collectives
          { Dsm_workload.Master_worker.default with tasks_per_worker = ops; racy; seed }
    | Stencil ->
        ignore
          (Dsm_workload.Stencil.setup env ~collectives
             { Dsm_workload.Stencil.default with iterations = ops; seed })
    | Pipeline ->
        Dsm_workload.Pipeline.setup env
          { Dsm_workload.Pipeline.default with batches = ops; seed }
    | Locked_counter ->
        Dsm_workload.Locked_counter.setup env
          { Dsm_workload.Locked_counter.default with
            increments_per_proc = ops; seed });
    (match Machine.run machine with
    | Dsm_sim.Engine.Completed -> ()
    | _ -> prerr_endline "warning: simulation did not complete");
    Format.printf "simulated time : %.2f us@." (Dsm_sim.Engine.now sim);
    (match checker with
    | None -> ()
    | Some ch ->
        Format.printf "coherence      : %d words checked, %d violation(s)@."
          (Dsm_rdma.Coherence.checked_words ch)
          (List.length (Dsm_rdma.Coherence.violations ch));
        List.iter
          (fun v ->
            Format.printf "  %a@." Dsm_rdma.Coherence.pp_violation v)
          (Dsm_rdma.Coherence.violations ch));
    Format.printf "messages       : %d (%d words)@."
      (Machine.fabric_messages machine)
      (Machine.fabric_words machine);
    (match detector with
    | None -> Format.printf "detection      : off@."
    | Some d ->
        Format.printf "checked ops    : %d@." (Detector.checked_ops d);
        Format.printf "@[<v>%a@]@." Report.pp_grouped (Detector.report d);
        (match report_csv with
        | Some path ->
            let oc = open_out path in
            output_string oc (Report.to_csv (Detector.report d));
            close_out oc;
            Format.printf "signals csv    : %s@." path
        | None -> ());
        if verbose then
          Format.printf "@[<v>%a@]@." Report.pp_summary (Detector.report d);
        (match Detector.trace d with
        | Some trace ->
            if explain then begin
              (* Pair each signalled access with one ground-truth race it
                 belongs to and show why the accesses are unordered. *)
              let flagged = Report.flagged_event_ids (Detector.report d) in
              let shown = Hashtbl.create 8 in
              List.iter
                (fun { Dsm_trace.Trace.first; second } ->
                  if
                    Hashtbl.mem flagged second.Dsm_trace.Event.id
                    && not (Hashtbl.mem shown second.Dsm_trace.Event.id)
                  then begin
                    Hashtbl.add shown second.Dsm_trace.Event.id ();
                    Format.printf "@.%s"
                      (Dsm_trace.Trace.explain trace
                         ~first:first.Dsm_trace.Event.id
                         ~second:second.Dsm_trace.Event.id)
                  end)
                (Dsm_trace.Trace.races trace)
            end;
            Format.printf "trace          : %a@." Dsm_trace.Export.pp_summary
              (Dsm_trace.Export.summary trace);
            (match dot_file with
            | Some path ->
                let oc = open_out path in
                output_string oc (Dsm_trace.Trace.to_dot trace);
                close_out oc;
                Format.printf "trace graph    : %s@." path
            | None -> ());
            (match csv_file with
            | Some path ->
                let oc = open_out path in
                output_string oc (Dsm_trace.Export.to_csv trace);
                close_out oc;
                Format.printf "trace csv      : %s@." path
            | None -> ())
        | None -> ()));
    `Ok ()
  end

let workload_cmd =
  let doc = "Run a workload on the simulated DSM machine." in
  let which =
    Arg.(
      required
      & pos 0 (some which_conv) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "random, master-worker, stencil, pipeline, or locked-counter.")
  in
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Process count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let ops =
    Arg.(
      value & opt int 20
      & info [ "ops" ] ~doc:"Ops per process / tasks / iterations.")
  in
  let racy =
    Arg.(value & flag & info [ "racy" ] ~doc:"Racy master-worker variant.")
  in
  let detect =
    Arg.(
      value & opt bool true
      & info [ "detect" ] ~doc:"Enable the race detector.")
  in
  let coherence =
    Arg.(
      value & flag
      & info [ "coherence" ] ~doc:"Attach the memory-coherence checker.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print signals live.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"For each signal, print why the pair is unordered (Lemma 1).")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dot" ] ~docv:"FILE" ~doc:"Write the HB graph as DOT.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-csv" ] ~docv:"FILE" ~doc:"Write the event trace as CSV.")
  in
  let report_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "signals-csv" ] ~docv:"FILE"
          ~doc:"Write the race signals as CSV.")
  in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(
      ret
        (const run_workload $ which $ n $ seed $ ops $ racy $ detect
       $ coherence $ verbose $ explain $ dot $ csv $ report_csv))

(* ---------- scale ---------- *)

let rep_conv =
  let parse = function
    | "epoch" -> Ok Config.Epoch_adaptive
    | "dense" -> Ok Config.Dense_vector
    | "sparse" -> Ok Config.Sparse_vector
    | s -> Error (`Msg (Printf.sprintf "unknown clock representation %S" s))
  in
  let print ppf = function
    | Config.Epoch_adaptive -> Format.pp_print_string ppf "epoch"
    | Config.Dense_vector -> Format.pp_print_string ppf "dense"
    | Config.Sparse_vector -> Format.pp_print_string ppf "sparse"
  in
  Arg.conv (parse, print)

let rep_name = function
  | Config.Epoch_adaptive -> "epoch"
  | Config.Dense_vector -> "dense"
  | Config.Sparse_vector -> "sparse"

let wire_conv =
  let parse = function
    | "dense" -> Ok Config.Dense_wire
    | "sparse" -> Ok Config.Sparse_wire
    | "delta" -> Ok Config.Delta_wire
    | s -> Error (`Msg (Printf.sprintf "unknown clock wire encoding %S" s))
  in
  let print ppf w = Format.pp_print_string ppf (Config.clock_wire_name w) in
  Arg.conv (parse, print)

module Model = Dsm_rdma.Model

let model_conv =
  let parse s =
    match Model.of_name s with Ok m -> Ok m | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Format.pp_print_string ppf (Model.name m) in
  Arg.conv (parse, print)

let model_arg ~extra_doc =
  Arg.(
    value
    & opt model_conv Model.default
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          ("Memory-model backend: nic_atomic (the paper's, default), \
            relaxed, eventual, or seq_consistent. Semantic — it changes \
            the protocol's ordering guarantees and the detector's \
            happens-before edges." ^ extra_doc))

let run_scale n rounds chunk racy batched rep shards wire model seed detect
    metrics_file verbose =
  setup_logs verbose;
  if n < 2 then `Error (false, "need at least 2 processes")
  else if racy && n < 3 then
    `Error (false, "racy mode needs at least 3 processes")
  else begin
    let sim = Dsm_sim.Engine.create ~seed () in
    let registry =
      match metrics_file with
      | None -> None
      | Some _ ->
          let r = Dsm_obs.Metrics.create () in
          ignore (Dsm_obs.Meter.attach r (Dsm_sim.Engine.probe sim));
          Some r
    in
    (* tiny segments: at n = 1024 the default 4096-word segments would
       cost tens of megabytes per run for buffers of a few words *)
    let words = max 64 chunk in
    let machine =
      Machine.create sim ~n ~private_words:words ~public_words:words ~model ()
    in
    let config =
      {
        Config.default with
        Config.clock_rep = rep;
        clock_wire = wire;
        store_shards = shards;
        granularity = Config.Word;
        memory_model = model;
      }
    in
    let detector =
      if detect then Some (Detector.create machine ~config ()) else None
    in
    let env =
      match detector with
      | Some d -> Env.checked d
      | None -> Env.plain machine
    in
    Dsm_workload.Scale.setup env
      { Dsm_workload.Scale.rounds; chunk; racy; batched; think_mean = 0.0;
        seed };
    let t0 = Unix.gettimeofday () in
    (match Machine.run machine with
    | Dsm_sim.Engine.Completed -> ()
    | _ -> prerr_endline "warning: simulation did not complete");
    let wall = Unix.gettimeofday () -. t0 in
    Format.printf "processes      : %d (%s clocks, %d store shard(s)%s)@." n
      (rep_name rep) shards
      (if batched then ", batched coherence" else "");
    Format.printf "simulated time : %.2f us@." (Dsm_sim.Engine.now sim);
    Format.printf "messages       : %d (%d words)@."
      (Machine.fabric_messages machine)
      (Machine.fabric_words machine);
    (match detector with
    | None -> Format.printf "detection      : off@."
    | Some d ->
        let ops = Detector.checked_ops d in
        Format.printf "checked ops    : %d (%.0f ops/s wall)@." ops
          (if wall > 0. then float_of_int ops /. wall else 0.);
        Format.printf "race signals   : %d@." (Report.count (Detector.report d));
        Format.printf "clock storage  : %d words, %d compact clock(s)@."
          (Detector.storage_words d) (Detector.epoch_clocks d);
        let dense, sparse, delta = Machine.clock_encodings machine in
        Format.printf
          "clock traffic  : %d piggybacked words (%s wire: %d dense, %d \
           sparse, %d delta)@."
          (Detector.clock_words_shipped d)
          (Config.clock_wire_name wire)
          dense sparse delta);
    (match (metrics_file, registry) with
    | Some path, Some reg ->
        write_string_file path
          (Dsm_obs.Metrics.to_json_string (Dsm_obs.Metrics.snapshot reg));
        Format.printf "metrics        : %s@." path
    | _ -> ());
    `Ok ()
  end

let scale_cmd =
  let doc =
    "Run the neighbour-push scaling workload: sparse clocks, sharded \
     clock stores and batched coherence at process counts far past the \
     paper's ~10."
  in
  let n =
    Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Process count.")
  in
  let rounds =
    Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Pushes per process.")
  in
  let chunk =
    Arg.(
      value & opt int 4
      & info [ "chunk" ] ~doc:"Contiguous slots per push (batch size).")
  in
  let racy =
    Arg.(
      value & flag
      & info [ "racy" ]
          ~doc:"Both ring neighbours write each buffer (every slot races).")
  in
  let batched =
    Arg.(
      value & opt bool true
      & info [ "batched" ]
          ~doc:"Coalesce each push into one fabric message.")
  in
  let rep =
    Arg.(
      value
      & opt rep_conv Config.Sparse_vector
      & info [ "rep" ] ~docv:"REP"
          ~doc:"Clock representation: epoch, dense, or sparse.")
  in
  let shards =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~doc:"Clock-store shards (power of two).")
  in
  let wire =
    Arg.(
      value
      & opt wire_conv Config.Delta_wire
      & info [ "clock-wire" ] ~docv:"ENC"
          ~doc:
            "Clock piggyback wire encoding: dense, sparse, or delta. \
             Accounting-only — the schedule is identical for every \
             choice; only the reported clock traffic changes.")
  in
  let model = model_arg ~extra_doc:"" in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Engine seed.") in
  let detect =
    Arg.(
      value & opt bool true
      & info [ "detect" ] ~doc:"Enable the race detector.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Attach the metrics registry to the run and write its JSON \
             snapshot to $(docv) after completion.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      ret
        (const run_scale $ n $ rounds $ chunk $ racy $ batched $ rep
       $ shards $ wire $ model $ seed $ detect $ metrics_file $ verbose))

(* ---------- run (mini-language programs) ---------- *)

(* Flight-recorder + provenance explanation of a finished run: correlate
   each race signal of the report with the recorded event window. The
   recorder is a passive sink, so attaching it never changes the run. *)
let explain_finished_run ~explain ~race_report ~flight detector =
  if explain || race_report <> None then begin
    let window =
      match flight with Some f -> Dsm_obs.Flight.events f | None -> []
    in
    let explanations =
      match detector with
      | None -> []
      | Some d ->
          Dsm_core.Diagnose.explain_report ~window (Detector.report d)
    in
    if explain then begin
      if explanations = [] then
        Format.printf "explain        : no race signal to explain@."
      else
        List.iter
          (fun e -> print_string (Dsm_obs.Explain.to_text e))
          explanations
    end;
    match race_report with
    | None -> ()
    | Some path ->
        write_string_file path (Dsm_obs.Explain.list_to_json explanations);
        Format.printf "race report    : %s@." path
  end

let run_source path n model instrument detect verbose trace_out metrics
    explain race_report =
  setup_logs verbose;
  let source = read_file path in
  match Dsm_lang.Parser.parse source with
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" path msg)
  | Ok prog -> (
      match Dsm_lang.Compile.lower ~instrument prog with
      | Error msg -> `Error (false, msg)
      | Ok ir ->
          let sim = Dsm_sim.Engine.create () in
          let machine = Machine.create sim ~n ~model () in
          let timeline, registry = attach_telemetry sim ~trace_out ~metrics in
          let flight =
            if explain || race_report <> None then
              Some (Dsm_obs.Flight.attach (Dsm_sim.Engine.probe sim))
            else None
          in
          let detector =
            if detect then Some (Detector.create machine ~verbose ())
            else None
          in
          let rt = Dsm_lang.Exec.setup machine ?detector ir in
          (match Machine.run machine with
          | Dsm_sim.Engine.Completed -> ()
          | _ -> prerr_endline "warning: simulation did not complete");
          Format.printf "wrappers       : %d checked / %d raw accesses@."
            (Dsm_lang.Ir.checked_accesses ir)
            (Dsm_lang.Ir.raw_accesses ir);
          Format.printf "simulated time : %.2f us@." (Dsm_sim.Engine.now sim);
          List.iter
            (fun (d : Dsm_lang.Ast.shared_decl) ->
              let contents = Dsm_lang.Exec.array_contents rt d.name in
              Format.printf "%-14s : [%s]@." d.name
                (String.concat " "
                   (Array.to_list (Array.map string_of_int contents))))
            prog.Dsm_lang.Ast.shared;
          (match detector with
          | None -> ()
          | Some d ->
              Format.printf "@[<v>%a@]@." Report.pp_grouped
                (Detector.report d));
          explain_finished_run ~explain ~race_report ~flight detector;
          (match finish_telemetry ~timeline ~trace_out ~registry with
          | Ok () -> `Ok ()
          | Error msg -> `Error (false, msg)))

let run_figure name n model detect verbose trace_out metrics explain
    race_report =
  setup_logs verbose;
  let n = max n Dsm_experiments.Figures.figure_min_nodes in
  let sim = Dsm_sim.Engine.create () in
  let machine = Machine.create sim ~n ~model () in
  let timeline, registry = attach_telemetry sim ~trace_out ~metrics in
  let flight =
    if explain || race_report <> None then
      Some (Dsm_obs.Flight.attach (Dsm_sim.Engine.probe sim))
    else None
  in
  match Dsm_experiments.Figures.build_figure name machine with
  | Error msg -> `Error (false, msg)
  | Ok detector ->
      (match Machine.run machine with
      | Dsm_sim.Engine.Completed -> ()
      | _ -> prerr_endline "warning: simulation did not complete");
      Format.printf "scenario       : %s (%d processes)@." name n;
      Format.printf "simulated time : %.2f us@." (Dsm_sim.Engine.now sim);
      Format.printf "messages       : %d (%d words)@."
        (Machine.fabric_messages machine)
        (Machine.fabric_words machine);
      (match detector with
      | Some d when detect ->
          Format.printf "checked ops    : %d@." (Detector.checked_ops d);
          Format.printf "@[<v>%a@]@." Report.pp_grouped (Detector.report d)
      | _ -> ());
      explain_finished_run ~explain ~race_report ~flight
        (if detect then detector else None);
      (match finish_telemetry ~timeline ~trace_out ~registry with
      | Ok () -> `Ok ()
      | Error msg -> `Error (false, msg))

let run_program path scenario n model instrument detect verbose trace_out
    metrics explain race_report =
  match (path, scenario) with
  | None, None -> `Error (true, "either FILE or --scenario NAME is required")
  | Some _, Some _ -> `Error (true, "FILE and --scenario are mutually exclusive")
  | None, Some name ->
      run_figure name n model detect verbose trace_out metrics explain
        race_report
  | Some path, None ->
      run_source path n model instrument detect verbose trace_out metrics
        explain race_report

let run_cmd =
  let doc =
    "Compile and run a mini-language program (see programs/*.dsm), or one \
     of the paper's figure scenarios with $(b,--scenario)."
  in
  let path =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program source file.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Run a figure scenario instead of a program file: %s."
               (String.concat ", " Dsm_experiments.Figures.figure_names)))
  in
  let n =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Process count.")
  in
  let model = model_arg ~extra_doc:"" in
  let instrument =
    Arg.(
      value & opt bool true
      & info [ "instrument" ]
          ~doc:"Let the pre-compiler insert detection wrappers (§5.2).")
  in
  let detect =
    Arg.(
      value & opt bool true
      & info [ "detect" ] ~doc:"Attach the race detector.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print signals live.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome/Perfetto trace-event JSON timeline of the run \
             (load it at ui.perfetto.dev or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics-registry snapshot after the run.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Explain every race signal: both conflicting accesses with \
             their clocks, the incomparable components, and the most \
             recent sync edge between the two processes in the \
             flight-recorder window.")
  in
  let race_report =
    Arg.(
      value
      & opt (some string) None
      & info [ "race-report" ] ~docv:"FILE"
          ~doc:"Write the race explanations as a JSON document to $(docv).")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run_program $ path $ scenario $ n $ model $ instrument
       $ detect $ verbose $ trace_out $ metrics $ explain $ race_report))

(* ---------- explore ---------- *)

module Explore = Dsm_explore.Explore
module Token = Dsm_explore.Token

let print_violations r =
  List.iter
    (fun v -> Format.printf "violation      : %a@." Explore.pp_violation v)
    r.Explore.violations

(* Replay a token with a probe sink that reconstructs the message arrows
   and race marks of the run, and render them as the paper-style
   space-time diagram. Arrow matching is FIFO per (src, dst, label) —
   exact under in-order delivery, best-effort under reordering faults. *)
let replay_with_diagram token =
  let arrows = ref [] in
  let marks = ref [] in
  let pending : (int * int * string, float Queue.t) Hashtbl.t =
    Hashtbl.create 32
  in
  let sink = function
    | Dsm_obs.Probe.Msg_sent { time; src; dst; label; _ } ->
        let q =
          match Hashtbl.find_opt pending (src, dst, label) with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.add pending (src, dst, label) q;
              q
        in
        Queue.push time q
    | Dsm_obs.Probe.Msg_delivered { time; src; dst; label; _ } -> (
        match Hashtbl.find_opt pending (src, dst, label) with
        | Some q when not (Queue.is_empty q) ->
            let send_time = Queue.pop q in
            arrows :=
              { Dsm_trace.Spacetime.send_time; recv_time = time; src; dst;
                label }
              :: !arrows
        | _ -> ())
    | Dsm_obs.Probe.Race_signal { time; pid; node; offset; len; _ } ->
        marks :=
          {
            Dsm_trace.Spacetime.time;
            pid;
            text = Printf.sprintf "RACE n%d+%d/%d" node offset len;
          }
          :: !marks
    | _ -> ()
  in
  match
    Explore.replay ~probe:(fun bus -> Dsm_obs.Probe.attach bus sink) token
  with
  | Error _ as e -> e
  | Ok r -> Ok (r, List.rev !arrows, List.rev !marks)

(* One deterministic explanation pass over a repro token: flight-recorded
   replay, explanation text/JSON, optional annotated Perfetto timeline.
   Every --explain path (explore finish, --replay) goes through here, so
   the rendered bytes are identical no matter how the token was found. *)
let explain_token ~explain ~race_report ~trace_out_violation token =
  if explain || race_report <> None || trace_out_violation <> None then begin
    let tl =
      match trace_out_violation with
      | Some _ -> Some (Dsm_obs.Timeline.create ())
      | None -> None
    in
    match Dsm_explore.Explain_run.of_token ?timeline:tl token with
    | Error msg -> Printf.eprintf "warning: explanation replay failed: %s\n" msg
    | Ok o ->
        if explain then begin
          if o.Dsm_explore.Explain_run.text = "" then
            Format.printf
              "explain        : no race signal and no provenance conflict \
               in this run@."
          else print_string o.Dsm_explore.Explain_run.text
        end;
        (match race_report with
        | None -> ()
        | Some path ->
            write_string_file path o.Dsm_explore.Explain_run.json;
            Format.printf "race report    : %s@." path);
        (match (tl, trace_out_violation) with
        | Some tl, Some path -> (
            match write_trace tl path with
            | Ok () -> ()
            | Error msg -> Printf.eprintf "warning: %s\n" msg)
        | _ -> ())
  end

(* Differential exploration: replay each explored schedule under two
   backends and report the first schedule whose verdicts differ, with a
   replay token per model and the sync edges the weaker model lacks. *)
let run_diff_models spec ~pair ~runs ~depth ~explain ~race_report =
  match String.split_on_char ',' pair with
  | [ a; b ] -> (
      match (Model.of_name (String.trim a), Model.of_name (String.trim b)) with
      | Error msg, _ | _, Error msg -> `Error (false, msg)
      | Ok ma, Ok mb when ma = mb ->
          `Error
            ( false,
              "--diff-models needs two distinct backends (got "
              ^ Model.name ma ^ " twice)" )
      | Ok ma, Ok mb -> (
          match Dsm_explore.Diff.run ?depth ~runs spec (ma, mb) with
          | exception Invalid_argument msg -> `Error (false, msg)
          | exception Sys_error msg -> `Error (false, msg)
          | o ->
              Format.printf
                "schedules      : %d explored under %s, replayed under %s@."
                o.Dsm_explore.Diff.schedules (Model.name ma) (Model.name mb);
              Format.printf
                "differing      : %d (%d flip a race verdict)@."
                o.Dsm_explore.Diff.differing o.Dsm_explore.Diff.race_dependent;
              (match o.Dsm_explore.Diff.first with
              | None ->
                  Format.printf
                    "verdicts       : identical under both models@.";
                  `Ok ()
              | Some f ->
                  Format.printf "races          : %d under %s, %d under %s@."
                    f.Dsm_explore.Diff.races_a (Model.name ma)
                    f.Dsm_explore.Diff.races_b (Model.name mb);
                  Format.printf "repro (%s) : %s@."
                    (Model.name ma)
                    (Token.to_string f.Dsm_explore.Diff.token_a);
                  Format.printf "repro (%s) : %s@."
                    (Model.name mb)
                    (Token.to_string f.Dsm_explore.Diff.token_b);
                  List.iter
                    (fun e -> Format.printf "missing edge   : %s@." e)
                    f.Dsm_explore.Diff.missing_edges;
                  (* Explain the run on the side that signalled races —
                     the explanation names the conflicting accesses the
                     missing edge would have ordered. *)
                  let racy_token =
                    if
                      f.Dsm_explore.Diff.races_b > f.Dsm_explore.Diff.races_a
                    then f.Dsm_explore.Diff.token_b
                    else f.Dsm_explore.Diff.token_a
                  in
                  explain_token ~explain ~race_report
                    ~trace_out_violation:None racy_token;
                  `Error
                    ( false,
                      "model-dependent verdict (see the per-model repro \
                       tokens)" ))))
  | _ ->
      `Error
        ( false,
          "--diff-models takes exactly two comma-separated backends, e.g. \
           nic_atomic,relaxed" )

let run_explore scenario n seed runs depth jobs chunk dpor latency clock_wire
    model diff_models force faults reliable bug max_events replay no_minimize
    metrics expect_races trace_out_violation explain race_report verbose =
  setup_logs verbose;
  if chunk < 1 then
    `Error (false, "--chunk must be a positive number of runs per claim")
  else if diff_models <> None && replay <> None then
    `Error
      ( false,
        "--diff-models explores fresh schedules; it cannot be combined \
         with --replay (replay one token per model instead)" )
  else if diff_models <> None && dpor then
    `Error
      ( false,
        "--diff-models replays every explored schedule under both \
         backends; --dpor's pruning is justified per model and does not \
         compose — drop one of them" )
  else if diff_models <> None && jobs > 1 then
    `Error
      (false, "--diff-models is a single-domain comparison; drop --jobs")
  else if dpor && replay <> None then
    `Error
      ( false,
        "--dpor cannot be combined with --replay: a token replays exactly \
         one schedule, there is nothing to prune" )
  else if dpor && jobs > 1 then
    `Error
      ( false,
        "--dpor is a single-domain search (its sleep sets are sequential \
         state); drop --jobs or use --jobs 1" )
  else if dpor && depth = None then
    `Error
      ( false,
        "--dpor requires --depth: it prunes the bounded-exhaustive DFS, \
         not random walks" )
  else
  match replay with
  | Some token_str -> (
      match Token.of_string token_str with
      | Error msg -> `Error (false, msg)
      | Ok token when
          (match model with
           | Some m -> m <> token.Token.model && not force
           | None -> false) ->
          (* A token replays the run that minted it, and the run is a
             function of the model — silently replaying under another
             backend would "reproduce" a different run. *)
          let m = Option.get model in
          `Error
            ( false,
              Printf.sprintf
                "token was minted under --model %s but --model %s was \
                 given; the schedule and verdict are model-dependent. \
                 Pass --force to replay the decision prefix under %s \
                 anyway."
                (Model.name token.Token.model)
                (Model.name m) (Model.name m) )
      | Ok token -> (
          let token =
            match model with
            | Some m when force -> { token with Token.model = m }
            | _ -> token
          in
          match replay_with_diagram token with
          | Error msg -> `Error (false, msg)
          | Ok (r, arrows, marks) ->
              Format.printf "fault plan     : %s@."
                (Dsm_net.Fault.to_string token.Token.faults);
              Format.printf "@[<v>%a@]@." Explore.pp_result r;
              print_violations r;
              Format.printf "%s@."
                (Dsm_trace.Spacetime.render ~n:token.Token.n ~arrows ~marks
                   ());
              if r.Explore.violations = [] then
                Format.printf "replay         : no invariant violated@.";
              explain_token ~explain ~race_report
                ~trace_out_violation:None token;
              `Ok ()))
  | None -> (
      match Dsm_net.Latency.of_string latency with
      | Error msg -> `Error (false, msg)
      | Ok latency -> (
      let faults =
        match faults with
        | None -> Dsm_net.Fault.none
        | Some s -> Dsm_net.Fault.of_string s
      in
      let spec =
        {
          Explore.scenario;
          n;
          seed;
          latency;
          clock_wire;
          model = Option.value model ~default:Model.default;
          faults;
          reliable;
          bug;
          max_events;
        }
      in
      match diff_models with
      | Some pair ->
          run_diff_models spec ~pair ~runs ~depth ~explain ~race_report
      | None ->
      (* --expect-races needs the merged race counter even when the user
         did not ask for a metrics printout *)
      let registry =
        if metrics || expect_races <> None then
          Some (Dsm_obs.Metrics.create ())
        else None
      in
      let print_metrics r = print_metrics (if metrics then r else None) in
      (* Assert the exploration-wide race count after a clean search;
         invariant violations already exit nonzero on their own. *)
      let check_expected_races ok =
        match (expect_races, registry) with
        | None, _ | _, None -> ok
        | Some want, Some reg ->
            let races =
              Dsm_obs.Metrics.value
                (Dsm_obs.Metrics.counter reg "detector.race_signal")
            in
            Format.printf "race signals   : %d (expected %s)@." races
              (if want then "some" else "none");
            if want && races = 0 then
              `Error
                ( false,
                  "expected races, but no schedule signalled one \
                   (detector.race_signal = 0)" )
            else if (not want) && races > 0 then
              `Error
                ( false,
                  Printf.sprintf
                    "expected a race-free scenario, but \
                     detector.race_signal = %d"
                    races )
            else ok
      in
      let progress =
        if jobs > 1 then begin
          (* Rate-limited stderr heartbeat fed by the shared completion
             counters; the CAS on [last] keeps concurrent workers from
             printing duplicate lines. *)
          let t0 = Unix.gettimeofday () in
          let last = Atomic.make t0 in
          Some
            (fun ~runs ~violated ->
              let now = Unix.gettimeofday () in
              let prev = Atomic.get last in
              if now -. prev >= 1.0 && Atomic.compare_and_set last prev now
              then
                Printf.eprintf "explore: %d runs, %d violating, %.0f runs/s\n%!"
                  runs violated
                  (float_of_int runs /. (now -. t0)))
        end
        else None
      in
      let finish (first : (Explore.mode * Explore.run_result) option) =
        match first with
        | None ->
            Format.printf "invariants     : all held@.";
            print_metrics registry;
            check_expected_races (`Ok ())
        | Some (_, r) ->
            print_violations r;
            let decisions =
              if no_minimize then Token.trim_trailing_zeros r.Explore.decisions
              else Explore.minimize ?metrics:registry spec r.Explore.decisions
            in
            let token = Explore.token_of spec decisions in
            Format.printf "repro          : %s@." (Token.to_string token);
            (* Re-execute the (minimized) violating run once, with a
               flight recorder (and a timeline sink when requested) on
               its replay arena: explanation text/JSON and the exported
               trace all describe the same deterministic run. *)
            explain_token ~explain ~race_report ~trace_out_violation token;
            print_metrics registry;
            `Error (false, "invariant violated (see repro token)")
      in
      if dpor then (
        (* guarded above: dpor implies depth is set and jobs = 1 *)
        let depth = Option.get depth in
        match
          Dsm_explore.Dpor.explore ?metrics:registry spec ~depth ~max_runs:runs
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | exception Sys_error msg -> `Error (false, msg)
        | st ->
            let explored = st.Dsm_explore.Dpor.runs in
            let pruned = st.Dsm_explore.Dpor.pruned in
            let total = explored + pruned in
            Format.printf
              "schedules      : %d explored, %d pruned (%.1f%% of %d \
               candidates), %d violating@."
              explored pruned
              (if total = 0 then 0.0
               else 100.0 *. float_of_int pruned /. float_of_int total)
              total st.Dsm_explore.Dpor.violated;
            finish st.Dsm_explore.Dpor.first)
      else
        (* Parallel.* with a size-1 pool delegates to the sequential
           explorer, and for jobs > 1 its merge is bit-identical to it —
           so one call site covers every --jobs value. *)
        match
          match depth with
          | Some depth ->
              Dsm_explore.Parallel.explore_exhaustive ~jobs ?metrics:registry
                spec ~depth ~max_runs:runs
          | None ->
              Dsm_explore.Parallel.explore_random ~jobs ~chunk
                ?metrics:registry ?progress spec ~runs
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | exception Sys_error msg -> `Error (false, msg)
        | stats ->
            Format.printf "schedules      : %d explored, %d violating@."
              stats.Explore.runs stats.Explore.violated;
            finish stats.Explore.first))

let explore_cmd =
  let doc = "Explore schedules and injected faults, checking protocol invariants." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a scenario under many scheduler interleavings (randomized \
         walks by default, bounded-exhaustive with $(b,--depth)), \
         optionally under an injected fault plan, and checks protocol \
         invariants after every run: completion, operation/lock \
         quiescence, memory coherence, detector clock monotonicity, and \
         per-schedule determinism.";
      `P
        "On a violation it prints a compact repro token; $(b,--replay) \
         re-executes a token deterministically.";
      `P
        (Printf.sprintf "Scenarios: %s."
           (String.concat ", " Dsm_explore.Scenario.known));
    ]
  in
  let scenario =
    Arg.(
      value & pos 0 string "getput"
      & info [] ~docv:"SCENARIO"
          ~doc:"getput, prog:FILE.dsm, or workload:NAME.")
  in
  let n =
    Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Process count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Engine seed.") in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~doc:"Schedules to explore (cap, in --depth mode).")
  in
  let depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"D"
          ~doc:
            "Bounded-exhaustive mode: enumerate all deviations within the \
             first $(docv) choice points instead of random walks.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains to explore with. Findings are bit-identical \
             for every $(docv) — parallelism only changes wall-clock \
             time.")
  in
  let latency =
    Arg.(
      value & opt string "infiniband"
      & info [ "latency" ] ~docv:"MODEL"
          ~doc:
            "Fabric latency model: infiniband, ethernet, constant:C, \
             linear:BASE:PER_WORD, logp:L:O:G, or jitter:MEAN:MODEL \
             (microseconds). constant:C makes deliveries tie, which \
             makes --depth trees branch — the regime --dpor prunes.")
  in
  let chunk =
    Arg.(
      value & opt int 64
      & info [ "chunk" ] ~docv:"RUNS"
          ~doc:
            "Walk indices claimed per worker fetch-and-add in random-walk \
             mode (ignored by --depth mode). Findings are bit-identical \
             for every $(docv); larger chunks only reduce shared-counter \
             traffic. Must be positive.")
  in
  let dpor =
    Arg.(
      value & flag
      & info [ "dpor" ]
          ~doc:
            "Sleep-set partial-order reduction for $(b,--depth) mode: \
             prune schedules that only reorder provably-independent \
             events of an already-explored schedule. Every pruned \
             schedule has an explored representative with the same \
             violations and races. Requires $(b,--depth); single-domain; \
             pruning disarms itself under $(b,--faults) (fault draws \
             break trace equivalence) and the search then runs \
             unpruned.")
  in
  let clock_wire =
    Arg.(
      value
      & opt wire_conv Config.Delta_wire
      & info [ "clock-wire" ] ~docv:"ENC"
          ~doc:
            "Clock piggyback wire encoding for scenarios that attach the \
             detector: dense, sparse, or delta. Accounting-only — \
             schedules, fingerprints and repro tokens are bit-identical \
             for every choice.")
  in
  let model =
    Arg.(
      value
      & opt (some model_conv) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Memory-model backend: nic_atomic (the paper's, default), \
             relaxed, eventual, or seq_consistent. Semantic — schedules, \
             fingerprints and race verdicts change with it, so repro \
             tokens carry the model and $(b,--replay) refuses a token \
             minted under a different $(b,--model) unless $(b,--force) \
             is given.")
  in
  let diff_models =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff-models" ] ~docv:"A,B"
          ~doc:
            "Differential mode: explore schedules under backend $(i,A) \
             and replay each explored schedule's decision list under \
             $(i,B), reporting the first schedule whose race verdicts \
             differ — with a replay token per model and the sync edges \
             the weaker model is missing. Exits nonzero on a \
             model-dependent verdict, like an invariant violation.")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "With $(b,--replay) and $(b,--model): replay the token's \
             decision prefix under the given model even though the token \
             was minted under a different one. The run is a valid run of \
             the new model, but not the run the token describes.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Fault plan, e.g. 'drop=0.2,dup=0.1' or '0>1:reorder=0.5' \
             (see the DESIGN notes for the grammar).")
  in
  let reliable =
    Arg.(
      value & flag
      & info [ "reliable" ]
          ~doc:"Enable the retry/ack transport so faults are survivable.")
  in
  let bug =
    Arg.(
      value & flag
      & info [ "bug" ]
          ~doc:
            "Plant the Skip_get_dst_lock protocol bug (for exercising the \
             explorer itself).")
  in
  let max_events =
    Arg.(
      value & opt int 200_000
      & info [ "max-events" ] ~doc:"Per-run event budget.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"TOKEN"
          ~doc:"Re-execute a repro token deterministically.")
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:"Skip schedule-prefix minimization of the repro token.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the metrics-registry snapshot after the exploration \
             (merged across worker domains with --jobs > 1).")
  in
  let expect_races =
    Arg.(
      value
      & opt (some bool) None
      & info [ "expect-races" ] ~docv:"BOOL"
          ~doc:
            "Assert the exploration-wide race count after a clean \
             search: $(b,true) fails unless some schedule signalled a \
             race, $(b,false) fails if any did. Collects metrics \
             internally even without $(b,--metrics).")
  in
  let trace_out_violation =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out-violation" ] ~docv:"FILE"
          ~doc:
            "On a violation, replay the (minimized) repro token and write \
             its Chrome/Perfetto trace-event JSON timeline to $(docv).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "On a violation (or with $(b,--replay)), re-execute the repro \
             token with a flight recorder attached and print a causal \
             explanation of every race signal: both conflicting accesses \
             with their clocks, the incomparable clock components, and \
             the most recent sync edge between the two processes. Runs \
             with a violation but no race signal fall back to the \
             detector's per-granule provenance (e.g. the planted \
             RMW-atomicity bug).")
  in
  let race_report =
    Arg.(
      value
      & opt (some string) None
      & info [ "race-report" ] ~docv:"FILE"
          ~doc:
            "Write the explanations of the (minimized) violating run as a \
             JSON document to $(docv). Implies the same deterministic \
             token replay as $(b,--explain).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")
  in
  Cmd.v (Cmd.info "explore" ~doc ~man)
    Term.(
      ret
        (const run_explore $ scenario $ n $ seed $ runs $ depth $ jobs
       $ chunk $ dpor $ latency $ clock_wire $ model $ diff_models $ force
       $ faults $ reliable $ bug $ max_events $ replay $ no_minimize
       $ metrics $ expect_races $ trace_out_violation $ explain
       $ race_report $ verbose))

(* ---------- scenario ---------- *)

let scenario_cmd =
  let doc = "Replay one of the paper's figures (fig1..fig5)." in
  let figure =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE" ~doc:"fig1, fig2, fig3, fig4, or fig5.")
  in
  let run figure =
    let experiment_of = function
      | "fig1" -> Some "E1"
      | "fig2" -> Some "E2"
      | "fig3" -> Some "E3"
      | "fig4" -> Some "E4"
      | "fig5" | "fig5a" | "fig5b" | "fig5c" -> Some "E5"
      | _ -> None
    in
    match experiment_of (String.lowercase_ascii figure) with
    | None -> `Error (false, Printf.sprintf "unknown figure %S" figure)
    | Some id -> (
        match
          Dsm_experiments.Registry.run_only Format.std_formatter id
        with
        | Ok () -> `Ok ()
        | Error msg -> `Error (false, msg))
  in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(ret (const run $ figure))

let main =
  let doc =
    "Coherent distributed memory with race-condition detection (Butelle & \
     Coti, IPPS 2011)"
  in
  Cmd.group
    (Cmd.info "dsmcheck" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      experiment_cmd;
      scenario_cmd;
      workload_cmd;
      scale_cmd;
      run_cmd;
      explore_cmd;
    ]

let () = exit (Cmd.eval main)
